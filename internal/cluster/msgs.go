package cluster

import (
	"repro/internal/commit"
	"repro/internal/quorum"
	"repro/internal/shard"
)

// LockMode is the lock an access must hold at a DM.
type LockMode int

// Lock modes. Write-TM read phases use LockWrite (update locking), so a
// writer never needs to upgrade a read lock it already holds.
const (
	LockRead LockMode = iota + 1
	LockWrite
)

// ReadReq asks a DM for its replica state of an item, acquiring a lock of
// the given mode for the transaction first. Seq identifies the quorum
// phase that issued the request (monotonic per transaction); hedged
// duplicates of one phase share a Seq, and a ReleaseReq carrying the same
// Seq tombstones the phase so late copies cannot re-grant. Seq 0 means
// "no phase tracking" (the sequential ablation path).
type ReadReq struct {
	Txn  TxnID
	Item string
	Lock LockMode
	Seq  int
}

// ReadResp carries the replica state visible to the transaction (committed
// state plus the intentions of its ancestors). Busy reports a lock
// conflict; the caller backs off and retries, which doubles as the
// cluster's deadlock resolution. Held reports that the transaction already
// held a lock on the item before this request — such locks belong to an
// earlier phase and must never be released by this one.
type ReadResp struct {
	OK   bool
	Busy bool
	Held bool
	VN   int
	Val  any
	Gen  int
	Cfg  quorum.Config
	// Hinted piggybacks on quorum-read replies: the replica holds a live
	// freshness hint for this item, so the client may cache it as a
	// single-replica read target. Advisory only — a hinted read re-validates
	// at serve time and falls back to the quorum path on any doubt.
	Hinted bool
}

// WriteReq buffers a versioned value write as an intention of the
// transaction, acquiring a write lock first. Seq is the issuing phase, as
// in ReadReq.
type WriteReq struct {
	Txn  TxnID
	Item string
	VN   int
	Val  any
	Seq  int
}

// ConfigWriteReq buffers a configuration write (generation bump) as an
// intention of the transaction, acquiring a write lock first.
type ConfigWriteReq struct {
	Txn  TxnID
	Item string
	Gen  int
	Cfg  quorum.Config
	Seq  int
}

// WriteResp acknowledges a write (or reports a lock conflict). Held is as
// in ReadResp.
type WriteResp struct {
	OK   bool
	Busy bool
	Held bool
}

// ReleaseReq retracts phase Seq of a transaction at one replica: the
// replica records a tombstone so late (hedged or cancelled) copies of the
// phase's request cannot re-grant, and frees the lock if — and only if —
// that phase created it, no later phase re-granted it, and no buffered
// intention depends on it. Sent fire-and-forget when a first-to-quorum
// fan-out completes with more grants than the winning quorum needs, so
// Moss locking fairness is preserved.
type ReleaseReq struct {
	Txn  TxnID
	Item string
	Seq  int
}

// CommitSubReq promotes a subtransaction's locks and intentions to its
// parent (Moss lock inheritance).
type CommitSubReq struct {
	Txn TxnID
}

// AbortReq discards the locks and intentions of a transaction and all its
// descendants.
type AbortReq struct {
	Txn TxnID
}

// CommitTopReq applies a top-level transaction's intentions to the
// committed replica state and releases its locks. Idempotent.
//
// Subs lists every committed subtransaction in Txn's tree. A DM that
// missed a CommitSubReq still holds that child's intentions under the
// child's own id; the list lets it apply them at top-level commit
// instead of discarding them, which would leave the write visible only
// at the replicas the promote reached.
type CommitTopReq struct {
	Txn  TxnID
	Subs []TxnID

	// Final maps each written item to the last version number the
	// transaction's committed tree installed for it. A transaction that
	// writes an item more than once may route each write through a
	// different write quorum, so a replica's committed state advancing at
	// commit-apply does NOT prove it holds the newest version — only the
	// client, which assembled every write quorum, knows the final number.
	// A replica self-grants a freshness hint only when its post-apply vn
	// equals Final[item]. Nil is always safe: no hints are granted.
	Final map[string]int
}

// Ack acknowledges a commit/abort control message.
type Ack struct {
	OK bool
}

// RepairReq propagates already-committed state to a stale replica —
// Gifford's background update of out-of-date copies, triggered by quorum
// reads that observe stale version numbers and by the anti-entropy
// sweeper. Applied only when strictly newer than the replica's committed
// state and no transaction holds conflicting state on the item. Gen/Cfg,
// when Gen is non-zero, propagate a newer quorum configuration the same
// way (the sweeper's reconfiguration catch-up); read repair leaves them
// zero.
type RepairReq struct {
	Item string
	VN   int
	Val  any
	Gen  int
	Cfg  quorum.Config
}

// OverloadedResp is the explicit admission rejection a DM sends when its
// bounded service queue sheds a request (queue full) or discards it
// expired-on-arrival (its propagated deadline passed while it queued).
// The caller learns "overloaded" the moment the verdict is decided instead
// of burning its call timeout, and the fan-out counts the replica as
// responsive-but-shedding — it is alive, so health probes must not suspect
// it, and hedging it would only add load.
type OverloadedResp struct {
	// DM is the replica that shed the request.
	DM string
	// Expired reports expired-on-arrival (deadline passed in queue) rather
	// than a queue-full shed.
	Expired bool
}

// PingReq is an inert request: a DM answers Ack{OK: true} without touching
// locks, leases or replica state. Overload harnesses use it as burst
// filler — it exercises admission, priority classification and deadline
// expiry like any bulk request, but a shed or served ping can never
// interact with the transaction protocol, which keeps seeded campaigns
// deterministic.
type PingReq struct {
	// Seq distinguishes burst pings in traces.
	Seq int
}

// InspectReq asks a DM for its committed replica state (diagnostics and
// tests only — not part of the protocol).
type InspectReq struct {
	Item string
}

// InspectResp carries a replica's committed state and bookkeeping sizes.
type InspectResp struct {
	OK      bool
	VN      int
	Val     any
	Gen     int
	Cfg     quorum.Config
	Locks   int
	Intents int
}

// RenewLeaseReq refreshes the lock lease of a live transaction at one DM.
// The DM refuses (Ack{OK: false}) when the transaction is already resolved
// — committed, aborted, or reaped — which is how a client whose lease
// lapsed learns it must not pass the commit point. Non-mutating: leases are
// soft state, re-stamped fresh on recovery.
type RenewLeaseReq struct {
	Txn TxnID
}

// ResolutionQueryReq asks a peer DM whether it knows the outcome of a
// top-level transaction. A DM sends it (fire-and-forget, to every peer)
// when a lock conflict runs into a holder whose lease expired: before
// presuming the orphan aborted, the cluster is polled for a commit record
// — a replica that heard CommitTopReq proves the transaction committed and
// supplies its committed-subs list.
type ResolutionQueryReq struct {
	Txn  TxnID
	From string
}

// ResolutionAnswer is the fire-and-forget reply to a ResolutionQueryReq.
// Known reports whether the answering DM has a resolution record for the
// transaction; Committed and Subs are meaningful only when Known. Active
// reports that the answering DM holds an unexpired lease for the
// transaction — its client renewed there recently, so it is alive and the
// inquirer extends grace instead of reaping. Accepted reports that the
// answering DM holds Paxos acceptor state for the transaction (it heard a
// Phase-2a or a recovery prepare): the outcome may already be decided, so
// the inquirer must run acceptor recovery over Cohort instead of presuming
// abort — a single Accepted answer vetoes the TTL-reap.
type ResolutionAnswer struct {
	Txn       TxnID
	From      string
	Known     bool
	Committed bool
	Subs      []TxnID
	Active    bool
	Accepted  bool
	Cohort    []string
}

// HintReadReq asks one replica to serve a read from its freshness hint: a
// single-replica fast-lane read that bypasses quorum assembly entirely.
// The replica serves it only while its hint is live — its committed
// (vn, gen) is provably the cluster maximum, no writer is in flight, and
// the hint's TTL has not lapsed — by translating the request into an
// ordinary ReadReq (read lock, lease stamp, WAL record and all), so
// everything downstream of the grant is the proven quorum-read machinery.
// Any doubt answers HintMissResp instead and the client falls back to the
// full read-quorum path. Gen is the configuration generation the client
// believes current; a mismatch is a miss, forcing the quorum path's
// generation chase. Txn/Seq are as in ReadReq.
type HintReadReq struct {
	Txn  TxnID
	Item string
	Seq  int
	Gen  int
}

// HintMissResp is the explicit refusal of a HintReadReq: the replica
// cannot prove freshness, and the client must assemble a read quorum.
// Reason is diagnostic ("none", "expired", "stale", "gen", "writer", ...);
// no protocol decision may depend on it.
type HintMissResp struct {
	DM     string
	Reason string
}

// HintGrantReq installs a freshness hint at one replica. Only the
// anti-entropy sweeper sends it, and only after inspecting every replica
// of the item and finding them unanimous — same committed (vn, gen), zero
// locks, zero intentions — so the granted bound is the cluster maximum by
// construction. The replica re-validates before accepting (its state must
// still match and no write fence may be fresh) and the grant is soft
// state: never logged, never replayed, gone after amnesia until re-proven.
type HintGrantReq struct {
	Item string
	VN   int
	Gen  int
}

// HintFenceReq revokes the freshness hint for an item at one replica —
// the write-path fence, sent to every replica of a written item after the
// lease fence and before the commit point. The replica drops its hint,
// stamps a fence window (grants are refused for one hint TTL), and acks
// OK only when no other transaction holds a lock on the item there: an
// outstanding hinted read's lock refuses the fence, which is what restores
// the quorum-intersection argument a single-replica read bypassed (see
// DESIGN.md §9). Txn names the fencing transaction so its own locks do not
// refuse it.
type HintFenceReq struct {
	Txn  TxnID
	Item string
}

// ReapReq resolves an orphaned transaction at the DM that decided its
// fate. It is self-applied — synthesized by the lease reaper from the
// inquiry outcome, never sent by clients — and routed through the same
// apply/WAL path as every other mutation so recovery replays the reap
// deterministically. Commit true means a peer produced a commit record
// (the DM applies the intentions, Subs naming the committed subtree);
// false is the presumed abort: no replica anywhere knew the transaction,
// so its commit point was never reached.
type ReapReq struct {
	Txn    TxnID
	Commit bool
	Subs   []TxnID
}

// AdoptItemReq tells a DM to start hosting a replica of an item it did not
// serve before — the first round of a live migration. The replica is
// created empty at version 0 with Initial as its value; the copy phase
// then installs the real (vn, val) through the ordinary write path, and
// only the committed cutover config record makes the new replica a read
// target. Idempotent: a DM that already hosts the item acks without
// touching its state, so a retried adopt round cannot regress a replica.
// Adoption is hard state (WAL-logged and replayed): a crashed new-group
// member must come back still hosting the item.
type AdoptItemReq struct {
	Item    string
	Initial any
}

// RetireItemReq tells an old-group DM to stop hosting an item after a
// migration cutover. The DM refuses while any transaction still holds
// locks or intentions on its replica — in-flight transactions finish
// against the old generation — and otherwise drops the replica and
// installs a durable moved marker carrying the new placement. From then on
// reads and writes for the item answer WrongShardResp instead of serving
// stale state. Hard state, like adoption: a recovered replica must still
// know it retired.
type RetireItemReq struct {
	Item  string
	Epoch int
	Group string
	DMs   []string
	Gen   int
	Cfg   quorum.Config
}

// WrongShardResp is a retired replica's answer to read/write traffic for
// an item it no longer hosts: the redirect. It carries the placement the
// marker recorded at retirement — the owning group, its replica set, and
// the post-cutover generation and config — so a stale client can relocate
// and retry without any directory service. Epoch is the ring epoch at
// cutover; clients use it to invalidate placement-derived caches.
type WrongShardResp struct {
	DM    string
	Item  string
	Epoch int
	Group string
	DMs   []string
	Gen   int
	Cfg   quorum.Config
}

// RingReq asks a DM for its current view of the placement ring. Ring
// state at replicas is soft — never logged, never replayed, rebuilt from
// the serve flags after amnesia — so the answer is a gossip convenience
// for routers, not an authority: item placement is always re-proven by
// the generation chase and WrongShard redirects of the data path.
type RingReq struct{}

// RingResp carries a DM's ring view. OK false means the DM is not
// ring-aware (unsharded deployment).
type RingResp struct {
	OK   bool
	Ring shard.Ring
}

// RingUpdateReq gossips a newer ring to a DM after a migration cutover.
// The replica adopts it only if strictly newer (higher epoch); stale or
// duplicate updates are ignored. Soft state, like RingReq.
type RingUpdateReq struct {
	Ring shard.Ring
}

// PaxosAcceptReq is the coordinator's Phase-2a of Paxos Commit: accept
// this transaction's outcome at Ballot. The coordinator that ran the
// transaction owns ballot 0 and skips Phase 1 (no other proposer ever
// uses 0). Commit/Subs/Final are the full Decision value — everything a
// CommitTopReq would carry — and Cohort is the complete acceptor set of
// the instance, recorded by each acceptor so any replica can later run
// recovery without knowing the transaction's footprint. Hard state: the
// acceptance is WAL-logged before the ack (persist-before-ack), which is
// what lets a majority of acceptors reconstruct the decision after any
// single failure.
type PaxosAcceptReq struct {
	Txn    TxnID
	Ballot int
	Commit bool
	Subs   []TxnID
	Final  map[string]int
	Cohort []string
}

// PaxosAcceptResp answers a PaxosAcceptReq. OK false with Promised set
// means a recovery proposer promised a higher ballot here (the
// coordinator lost the race and must not treat the outcome as decided).
// Decided short-circuits: the transaction is already resolved at this
// replica — recovery beat the coordinator to a decision — and the caller
// adopts DecCommit instead of counting votes.
type PaxosAcceptResp struct {
	OK        bool
	Promised  int
	Decided   bool
	DecCommit bool
}

// PaxosPrepareReq is Phase-1a durability for recovery: it is self-applied
// by the DM running acceptor recovery (synthesized from a
// PaxosRecoverQuery, never sent by clients) so the promise watermark is
// WAL-logged before the promise leaves the machine. Mirrors ReapReq's
// self-apply pattern.
type PaxosPrepareReq struct {
	Txn    TxnID
	Ballot int
	Cohort []string
}

// PaxosDecisionReq installs a decided outcome at a replica: the learn
// message of Paxos Commit, sent by whichever recovery proposer completed
// a round (and self-applied at the proposer). Commit true applies the
// transaction's intentions exactly as CommitTopReq would; false discards
// them as AbortReq would. Idempotent, WAL-logged, and it retires the
// per-transaction acceptor state — after a decision, queries answer from
// the resolution record.
type PaxosDecisionReq struct {
	Txn    TxnID
	Commit bool
	Subs   []TxnID
	Final  map[string]int
}

// PaxosRecoverQuery is the fire-and-forget Phase-1a of acceptor recovery:
// DM From proposes ballot Ballot for Txn's instance and asks each cohort
// member to promise. Soft state at the receiver until it grants — the
// grant itself is logged via PaxosPrepareReq before the promise is sent.
type PaxosRecoverQuery struct {
	Txn    TxnID
	Ballot int
	Cohort []string
	From   string
}

// PaxosRecoverPromise is the fire-and-forget Phase-1b answer. OK false
// reports a higher promise watermark (Promised), killing the proposer's
// ballot. AccBal/AccCommit/AccSubs/AccFinal carry the acceptor's accepted
// value when AccBal >= 0 — the proposer must adopt the highest accepted
// ballot's value. Decided short-circuits the round entirely: the answering
// replica already knows the outcome (DecCommit/DecSubs/DecFinal), and the
// proposer adopts it as decided — it never re-proposes over a decision.
type PaxosRecoverPromise struct {
	Txn      TxnID
	Ballot   int
	From     string
	OK       bool
	Promised int
	AccBal   int
	AccCommit bool
	AccSubs   []TxnID
	AccFinal  map[string]int
	Decided   bool
	DecCommit bool
	DecSubs   []TxnID
	DecFinal  map[string]int
}

// PaxosRecoverAccept is the fire-and-forget Phase-2a of a recovery round:
// accept the chosen value at Ballot. The receiver logs the acceptance
// (through the same acceptor state machine as PaxosAcceptReq) before
// answering PaxosRecoverAccepted.
type PaxosRecoverAccept struct {
	Txn    TxnID
	Ballot int
	Commit bool
	Subs   []TxnID
	Final  map[string]int
	// Cohort travels with the accept because a cohort member that missed the
	// Phase-1 query (the proposer accepts at ALL members, not just the
	// promising quorum) may hold no acceptor state yet and must create it.
	Cohort []string
	From   string
}

// PaxosRecoverAccepted is the fire-and-forget Phase-2b ack. A majority of
// OK accepts at the proposer's ballot decides the value; the proposer then
// broadcasts PaxosDecisionReq.
type PaxosRecoverAccepted struct {
	Txn    TxnID
	Ballot int
	From   string
	OK     bool
}

// ResolutionProbeReq asks a DM how a transaction stands there (diagnostics
// and chaos gating only — not part of the protocol). The answer is served
// from the same actor goroutine that owns the state, so it is consistent
// without locks.
type ResolutionProbeReq struct {
	Txn TxnID
}

// ResolutionProbeResp reports a replica's view of one transaction: whether
// it holds a resolution record (Known/Committed), whether any replica
// state still references the transaction's tree (Holds — locks or
// intentions), and the raw acceptor hard state when one exists (Promised,
// AccBal, AccCommit; Promised is -2 when no acceptor state exists, since
// -1 and 0 are both meaningful watermarks).
type ResolutionProbeResp struct {
	Known     bool
	Committed bool
	Holds     bool
	Promised  int
	AccBal    int
	AccCommit bool
}

// QuarantinedResp is a quarantined replica's answer to every request: its
// write-ahead log was found corrupt (or an append failed mid-operation),
// so nothing it could serve is trustworthy and nothing it could promise
// would survive. Serving stale-but-plausible state would be a silent
// split brain; the explicit refusal lets callers count the replica as
// responsive-but-useless — alive for failure detection, never granted,
// never hedged — until a peer rebuild (cluster.RebuildReplica) readmits
// it. Reason carries the corruption detail for diagnostics.
type QuarantinedResp struct {
	DM     string
	Reason string
}

// RebuildPullReq asks one replica for everything it holds that a
// quarantined peer (For) needs to rebuild from scratch: committed state
// for the listed items, moved markers, resolution records, and the Paxos
// acceptor hard state of every instance whose cohort names For. Served
// from the actor goroutine (consistent without locks) and never logged —
// the pull mutates nothing at the answering replica.
type RebuildPullReq struct {
	For   string
	Items []string
}

// RebuildItemState is one replica's committed view of one item in a
// RebuildPullResp. Has false means the replica does not host the item
// (and VN/Val/Gen/Cfg are meaningless). Only committed state travels:
// locks and intentions of in-flight transactions died with the corrupt
// log, and the lease fence turns their loss into clean aborts instead of
// broken promises.
type RebuildItemState struct {
	Item string
	Has  bool
	VN   int
	Val  any
	Gen  int
	Cfg  quorum.Config
}

// RebuildResolution mirrors one resolution record in a RebuildPullResp.
// Subs is nil for aborts and for commit records the retention cap already
// compacted to outcome tombstones.
type RebuildResolution struct {
	Committed bool
	Subs      []TxnID
}

// RebuildPullResp is one replica's complete answer to a RebuildPullReq.
// Items answers the requested items in order; Moved carries the redirect
// markers among them; Resolved and Acceptors carry the transaction
// outcome state the rebuilding replica must re-adopt before it may serve
// again. OK false (or a QuarantinedResp instead) means this replica
// cannot contribute and the rebuild must not count it as a witness.
type RebuildPullResp struct {
	OK        bool
	From      string
	Items     []RebuildItemState
	Moved     map[string]WrongShardResp
	Resolved  map[TxnID]RebuildResolution
	Acceptors map[TxnID]commit.Acceptor
}
