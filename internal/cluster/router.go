package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/quorum"
	"repro/internal/shard"
)

// Router is the shard-aware client face over a sharded Store (DESIGN.md
// §10). It resolves keys to replica groups through a cached copy of the
// placement ring, groups cross-shard transactions into one subtransaction
// subtree per touched group, and absorbs one WrongShardError redirect per
// operation by refreshing its ring and retrying — the "retry once" a
// freshly-migrated key costs a stale client.
//
// A Router is safe for concurrent use; each operation runs its own
// top-level transaction on the underlying Store.
type Router struct {
	s *Store

	mu   sync.Mutex
	ring *shard.Ring
}

// NewRouter wraps a sharded Store. It fails on unsharded stores — an
// unsharded Store is its own router.
func NewRouter(s *Store) (*Router, error) {
	ring := s.Ring()
	if ring == nil {
		return nil, errors.New("cluster: router requires a sharded store (WithShards/WithRing)")
	}
	return &Router{s: s, ring: ring}, nil
}

// Store exposes the underlying Store for operations the router does not
// mediate (stats, chaos controls, Close).
func (r *Router) Store() *Store { return r.s }

// Epoch returns the cached ring epoch — the placement version this
// router's next lookup routes under.
func (r *Router) Epoch() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Epoch
}

// GroupOf resolves key to the replica group the cached ring places it on.
func (r *Router) GroupOf(key string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Lookup(key)
}

// Placement maps each replica group to the keys (among those given) the
// cached ring places on it — the -inspect view of the keyspace.
func (r *Router) Placement(keys []string) map[string][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string][]string{}
	for _, g := range r.ring.GroupNames() {
		out[g] = nil
	}
	for _, k := range keys {
		g := r.ring.Lookup(k)
		out[g] = append(out[g], k)
	}
	for g := range out {
		sort.Strings(out[g])
	}
	return out
}

// syncRing folds the Store's ring — which advances whenever a redirect is
// adopted — into the router's cache if it is newer.
func (r *Router) syncRing() {
	fresh := r.s.Ring()
	if fresh == nil {
		return
	}
	r.mu.Lock()
	r.ring.Adopt(fresh)
	r.mu.Unlock()
}

// retryOnce runs op; when it fails with a WrongShardError the store has
// already adopted the redirect, so the router refreshes its ring cache and
// reruns op exactly once against the new placement. Redirects the store
// absorbed mid-phase (no error surfaced) still advance the store's ring,
// so the cache is re-synced whenever the store's epoch moved past it.
func (r *Router) retryOnce(op func() error) error {
	err := op()
	if r.s.RingEpoch() > r.Epoch() {
		r.syncRing()
	}
	var wse *WrongShardError
	if err == nil || !errors.As(err, &wse) {
		return err
	}
	return op()
}

// Read reads one key under a single-key top-level transaction.
func (r *Router) Read(ctx context.Context, key string) (val any, err error) {
	err = r.retryOnce(func() error {
		return r.s.Run(ctx, func(t *Txn) error {
			var rerr error
			val, rerr = t.Read(ctx, key)
			return rerr
		})
	})
	return val, err
}

// Write writes one key under a single-key top-level transaction.
func (r *Router) Write(ctx context.Context, key string, v any) error {
	return r.retryOnce(func() error {
		return r.s.Run(ctx, func(t *Txn) error {
			return t.Write(ctx, key, v)
		})
	})
}

// Op is one key access inside a cross-shard transaction.
type Op struct {
	// Key names the item.
	Key string
	// Write selects a write (installing Val) over a read.
	Write bool
	// Val is the value a write installs; ignored for reads.
	Val any
}

// ReadOp and WriteOp build the common Op shapes.
func ReadOp(key string) Op         { return Op{Key: key} }
func WriteOp(key string, v any) Op { return Op{Key: key, Write: true, Val: v} }

// RunCrossShard executes ops as ONE serializable top-level transaction
// spanning every shard the keys map to. Keys are grouped by replica group
// and each group's ops run inside their own subtransaction — one subtree
// per shard, exactly the nested-transaction shape the paper's locking
// rules already handle: a subtree that conflicts aborts and is retried by
// Run without disturbing siblings that already promoted, and the top-level
// commit fans out only to DMs of participating groups.
//
// Read results are returned keyed by item. On success every op ran; on
// error none of the writes are visible.
func (r *Router) RunCrossShard(ctx context.Context, ops []Op) (map[string]any, error) {
	if len(ops) == 0 {
		return map[string]any{}, nil
	}
	var reads map[string]any
	err := r.retryOnce(func() error {
		// Group under the CURRENT cached ring each attempt: a redirect
		// retry must regroup, since the redirected key changed groups.
		r.mu.Lock()
		byGroup := map[string][]Op{}
		for _, op := range ops {
			g := r.ring.Lookup(op.Key)
			byGroup[g] = append(byGroup[g], op)
		}
		r.mu.Unlock()
		groups := make([]string, 0, len(byGroup))
		for g := range byGroup {
			groups = append(groups, g)
		}
		sort.Strings(groups)
		attempt := map[string]any{}
		runErr := r.s.Run(ctx, func(t *Txn) error {
			for _, g := range groups {
				gops := byGroup[g]
				if err := t.Sub(ctx, func(sub *Txn) error {
					for _, op := range gops {
						if op.Write {
							if err := sub.Write(ctx, op.Key, op.Val); err != nil {
								return err
							}
							continue
						}
						v, err := sub.Read(ctx, op.Key)
						if err != nil {
							return err
						}
						attempt[op.Key] = v
					}
					return nil
				}); err != nil {
					// A failed subtree fails the whole cross-shard
					// transaction: partial cross-shard application is
					// exactly what the atomic commit must rule out.
					return err
				}
			}
			return nil
		})
		if runErr == nil {
			reads = attempt
		}
		return runErr
	})
	if err != nil {
		return nil, err
	}
	return reads, nil
}

// MigrateShard live-migrates keys to the replica group named toGroup, one
// item at a time (each under its own coordinator transaction and fences),
// then refreshes the router's ring cache. Items already on toGroup are
// skipped. The first failing key aborts the batch and reports how far the
// cutover got; completed keys stay migrated — item migrations are
// independently atomic, so a partial batch is a valid placement.
func (r *Router) MigrateShard(ctx context.Context, toGroup string, keys ...string) error {
	for i, key := range keys {
		if err := r.s.MigrateItem(ctx, key, toGroup); err != nil {
			r.syncRing()
			return fmt.Errorf("cluster: migrate batch to %q: key %q (%d/%d done): %w",
				toGroup, key, i, len(keys), err)
		}
	}
	r.syncRing()
	return nil
}

// Refresh pulls the ring from the cluster: it asks DMs (in sorted order)
// for their ring via RingReq and adopts the newest epoch heard into both
// the router's cache and the Store's placement state. Ring state at DMs is
// soft, so a refusal is not an error; Refresh reports the epoch it ended
// on.
func (r *Router) Refresh(ctx context.Context) (int, error) {
	r.mu.Lock()
	dms := append([]string(nil), r.ring.DMs()...)
	r.mu.Unlock()
	for _, dm := range dms {
		budget, derr := r.s.callBudget(ctx)
		if derr != nil {
			return r.Epoch(), derr
		}
		cctx, cancel := context.WithTimeout(ctx, budget)
		raw, err := r.s.client.Call(cctx, dm, RingReq{})
		cancel()
		if err != nil {
			continue
		}
		resp, ok := raw.(RingResp)
		if !ok || !resp.OK {
			continue
		}
		ring := resp.Ring
		r.mu.Lock()
		r.ring.Adopt(&ring)
		r.mu.Unlock()
		r.s.adoptRing(&ring)
	}
	return r.Epoch(), nil
}

// adoptRing folds an externally-learned ring into the store's placement
// state when it is strictly newer, invalidating hint-cache entries minted
// under the older epoch.
func (s *Store) adoptRing(r *shard.Ring) {
	if r == nil {
		return
	}
	s.mu.Lock()
	epoch := 0
	if s.ring != nil {
		s.ring.Adopt(r)
		epoch = s.ring.Epoch
	}
	s.mu.Unlock()
	if epoch > 0 {
		s.hintCache.setEpoch(epoch)
	}
}

// ShardItems builds the ItemSpec slice a sharded deployment opens with:
// each key is placed by the ring and replicated across its group's DMs
// under a majority quorum. Deployments wanting non-majority per-group
// configs can post-process the result.
func ShardItems(r *shard.Ring, keys []string, initial any) ([]ItemSpec, error) {
	if r == nil {
		return nil, errors.New("cluster: ShardItems: nil ring")
	}
	items := make([]ItemSpec, 0, len(keys))
	for _, key := range keys {
		name := r.Lookup(key)
		g, ok := r.Group(name)
		if !ok {
			return nil, fmt.Errorf("cluster: ShardItems: key %q maps to unknown group %q", key, name)
		}
		dms := append([]string(nil), g.DMs...)
		items = append(items, ItemSpec{
			Name: key, Initial: initial, DMs: dms, Config: quorum.Majority(dms),
		})
	}
	return items, nil
}
