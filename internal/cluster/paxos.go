package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/commit"
)

// Paxos Commit (DESIGN.md §11): the non-blocking commit arm. The clean path
// replaces 2PC's unilateral commit point with one consensus instance per
// top-level transaction — the coordinator, owning ballot 0, sends Phase-2a
// accepts for the full outcome value (commit flag, committed-subs list,
// final version map) to a cohort of acceptors co-located on the replica
// groups the transaction wrote. A majority of durable acceptances decides
// the outcome; only then does the learn fan-out (the ordinary CommitTopReq
// round) publish it. If the coordinator dies at ANY instant, any DM that
// trips over the orphan's locks reconstructs the decision from a majority
// of acceptors in one round-trip instead of waiting out a lease TTL — and
// when no acceptor anywhere voted, presumed abort still backstops exactly
// as under 2PC.
//
// The server half of this file is soft-state coordination in the style of
// lease.go: recovery rounds live in dmServer.recoveries and are never
// logged; every promise and acceptance they produce enters the state
// machine as a logged request (PaxosPrepareReq, PaxosAcceptReq,
// PaxosDecisionReq) and is made durable before the answer leaves the
// machine, via the persist seam.

// ErrTxnInDoubt means the coordinator could not learn its transaction's
// outcome: the Phase-2a fan-out reached at least one acceptor but no
// majority answered, so the outcome is whatever the acceptors eventually
// decide — committing OR aborting locally would risk contradicting it. The
// transaction's locks stand until acceptor recovery resolves them (one
// inquiry round-trip after a conflict finds them, not a lease TTL).
var ErrTxnInDoubt = errors.New("cluster: transaction outcome in doubt")

// InDoubtError reports which transaction was left to acceptor recovery and
// how far its Phase-2a got. It wraps ErrTxnInDoubt only — NOT ErrConflict:
// Run must not restart an in-doubt transaction (its outcome may yet be
// commit).
type InDoubtError struct {
	// Txn is the transaction whose outcome is unresolved.
	Txn TxnID
	// Acked is how many acceptors durably accepted ballot 0.
	Acked int
	// Cohort is the acceptor cohort size (majority = Cohort/2 + 1).
	Cohort int
}

func (e *InDoubtError) Error() string {
	return fmt.Sprintf(
		"cluster: outcome of %s is in doubt (%d of %d acceptors acked, majority is %d); acceptor recovery will decide it — do not retry until it does",
		e.Txn, e.Acked, e.Cohort, commit.Quorum(e.Cohort))
}

func (e *InDoubtError) Unwrap() error { return ErrTxnInDoubt }

// txnsToStrings converts a TxnID list to the plain strings the commit
// package's Decision value carries (it must not depend on cluster types).
func txnsToStrings(ts []TxnID) []string {
	if len(ts) == 0 {
		return nil
	}
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = string(t)
	}
	return out
}

// stringsToTxns reverses txnsToStrings.
func stringsToTxns(ss []string) []TxnID {
	if len(ss) == 0 {
		return nil
	}
	out := make([]TxnID, len(ss))
	for i, s := range ss {
		out[i] = TxnID(s)
	}
	return out
}

// --- server side: acceptor recovery ---

// paxosRecovery is the proposer soft state of one in-flight acceptor
// recovery round. Like an inquiry it is never logged: a round lost to a
// crash is simply re-run (at a higher ballot) when the next conflict finds
// the orphan still unresolved.
type paxosRecovery struct {
	ballot  int
	attempt int
	cohort  []string // sorted acceptor set of the instance
	started time.Time
	// phase: 1 = collecting promises, 2 = collecting accepts, 0 = dead
	// (a higher ballot was promised somewhere; the next trigger restarts
	// with attempt+1).
	phase    int
	val      commit.Decision
	promises map[string]commit.Promise
	accepts  map[string]bool
}

// proposerBallot derives this DM's recovery ballot for the given attempt:
// globally unique per (DM, attempt) and always above the coordinator's 0.
func (s *dmServer) proposerBallot(attempt int) int {
	all := append(append([]string{}, s.peers...), s.id)
	sort.Strings(all)
	idx := sort.SearchStrings(all, s.id)
	return commit.RecoveryBallot(attempt, idx, len(all))
}

// startPaxosRecovery begins (or re-arms) acceptor recovery for top: query
// every cohort member for a promise at a fresh ballot. Triggered wherever
// the lease reaper would have started a resolution inquiry — a conflict or
// sweep found the orphan's locks — but acceptor state exists, locally or
// at a peer, so the outcome must be reconstructed, never presumed.
func (s *dmServer) startPaxosRecovery(top TxnID, cohort []string) {
	if s.resolved[top] != nil || len(cohort) == 0 {
		return
	}
	now := s.clock.Now()
	attempt := 0
	if rec := s.recoveries[top]; rec != nil {
		if rec.phase != 0 && now.Sub(rec.started) < s.leaseTTL {
			return // a round is in flight and still fresh
		}
		attempt = rec.attempt + 1
	}
	if s.stats != nil {
		s.stats.AcceptorRecoveries.Inc()
	}
	rec := &paxosRecovery{
		ballot:   s.proposerBallot(attempt),
		attempt:  attempt,
		cohort:   append([]string(nil), cohort...),
		started:  now,
		phase:    1,
		promises: map[string]commit.Promise{},
		accepts:  map[string]bool{},
	}
	sort.Strings(rec.cohort)
	if s.recoveries == nil {
		s.recoveries = map[TxnID]*paxosRecovery{}
	}
	s.recoveries[top] = rec
	for _, m := range rec.cohort {
		// Self included: the query loops back through the transport so the
		// answer arrives on the loop goroutine like every peer's, after the
		// promise it carries is durable.
		s.notifyPeer(m, PaxosRecoverQuery{Txn: top, Ballot: rec.ballot, Cohort: rec.cohort, From: s.id})
	}
}

// persistThen makes an already-applied acceptor mutation durable before
// running done (which only sends — it must not touch actor state, because
// it runs on the log's flusher goroutine). Volatile DMs and unchanged
// state run done immediately.
func (s *dmServer) persistThen(req any, mutated bool, done func()) {
	if mutated && s.persist != nil {
		s.persist(req, done)
		return
	}
	done()
}

// coordinatePaxos serves the acceptor-recovery messages and the
// diagnostics probe. Called from coordinate on the loop goroutine.
func (s *dmServer) coordinatePaxos(req any) (resp any, handled bool) {
	switch q := req.(type) {
	case PaxosRecoverQuery:
		// Phase 1b. A resolved instance short-circuits the whole round: the
		// proposer adopts the decision instead of counting promises.
		if res := s.resolved[q.Txn]; res != nil {
			s.notifyPeer(q.From, PaxosRecoverPromise{
				Txn: q.Txn, Ballot: q.Ballot, From: s.id,
				Decided: true, DecCommit: res.committed, DecSubs: res.subs,
			})
			return Ack{OK: true}, true
		}
		prep := PaxosPrepareReq{Txn: q.Txn, Ballot: q.Ballot, Cohort: q.Cohort}
		raw, mutated := s.apply(prep)
		ack, _ := raw.(Ack)
		ans := PaxosRecoverPromise{Txn: q.Txn, Ballot: q.Ballot, From: s.id, OK: ack.OK, AccBal: -1}
		if acc := s.acceptors[q.Txn]; acc != nil {
			ans.Promised = acc.Promised
			ans.AccBal = acc.AccBal
			if acc.AccBal >= 0 {
				ans.AccCommit = acc.AccVal.Commit
				ans.AccSubs = stringsToTxns(acc.AccVal.Subs)
				ans.AccFinal = acc.AccVal.Final
			}
		}
		from := q.From
		s.persistThen(prep, mutated, func() { s.notifyPeer(from, ans) })
		return Ack{OK: true}, true
	case PaxosRecoverPromise:
		// Proposer side of Phase 1b. A decided answer ends the round — the
		// proposer adopts, it never re-proposes over a decision.
		if q.Decided {
			delete(s.recoveries, q.Txn)
			s.decidePaxos(q.Txn, commit.Decision{
				Commit: q.DecCommit, Subs: txnsToStrings(q.DecSubs), Final: q.DecFinal,
			})
			return Ack{OK: true}, true
		}
		rec := s.recoveries[q.Txn]
		if rec == nil || rec.ballot != q.Ballot || rec.phase != 1 {
			return Ack{OK: true}, true
		}
		if !q.OK {
			rec.phase = 0 // our ballot lost; the next trigger goes higher
			return Ack{OK: true}, true
		}
		rec.promises[q.From] = commit.Promise{OK: true, AccBal: q.AccBal, AccVal: commit.Decision{
			Commit: q.AccCommit, Subs: txnsToStrings(q.AccSubs), Final: q.AccFinal,
		}}
		if len(rec.promises) < commit.Quorum(len(rec.cohort)) {
			return Ack{OK: true}, true
		}
		// Quorum promised: choose the value consensus may already have
		// decided (highest accepted ballot; no acceptances anywhere means
		// the commit point was provably never passed — abort, the presumed-
		// abort backstop) and push Phase 2a to the whole cohort.
		proms := make([]commit.Promise, 0, len(rec.promises))
		for _, p := range rec.promises {
			proms = append(proms, p)
		}
		rec.val = commit.Choose(proms)
		rec.phase = 2
		for _, m := range rec.cohort {
			s.notifyPeer(m, PaxosRecoverAccept{
				Txn: q.Txn, Ballot: rec.ballot,
				Commit: rec.val.Commit, Subs: stringsToTxns(rec.val.Subs), Final: rec.val.Final,
				Cohort: rec.cohort, From: s.id,
			})
		}
		return Ack{OK: true}, true
	case PaxosRecoverAccept:
		// Phase 2a of a recovery round.
		if res := s.resolved[q.Txn]; res != nil {
			s.notifyPeer(q.From, PaxosRecoverPromise{
				Txn: q.Txn, Ballot: q.Ballot, From: s.id,
				Decided: true, DecCommit: res.committed, DecSubs: res.subs,
			})
			return Ack{OK: true}, true
		}
		areq := PaxosAcceptReq{
			Txn: q.Txn, Ballot: q.Ballot, Commit: q.Commit,
			Subs: q.Subs, Final: q.Final, Cohort: q.Cohort,
		}
		raw, mutated := s.apply(areq)
		ar, _ := raw.(PaxosAcceptResp)
		ans := PaxosRecoverAccepted{Txn: q.Txn, Ballot: q.Ballot, From: s.id, OK: ar.OK}
		from := q.From
		s.persistThen(areq, mutated, func() { s.notifyPeer(from, ans) })
		return Ack{OK: true}, true
	case PaxosRecoverAccepted:
		// Proposer side of Phase 2b: a majority of durable acceptances at
		// our ballot decides the chosen value.
		rec := s.recoveries[q.Txn]
		if rec == nil || rec.ballot != q.Ballot || rec.phase != 2 {
			return Ack{OK: true}, true
		}
		if !q.OK {
			rec.phase = 0
			return Ack{OK: true}, true
		}
		rec.accepts[q.From] = true
		if len(rec.accepts) < commit.Quorum(len(rec.cohort)) {
			return Ack{OK: true}, true
		}
		val := rec.val
		delete(s.recoveries, q.Txn)
		s.decidePaxos(q.Txn, val)
		return Ack{OK: true}, true
	case ResolutionProbeReq:
		ans := ResolutionProbeResp{Promised: -2, AccBal: -1}
		if res := s.resolved[q.Txn]; res != nil {
			ans.Known, ans.Committed = true, res.committed
		}
		top := q.Txn.Top()
		for _, r := range s.replicas {
			for holder := range r.locks {
				if holder.Top() == top {
					ans.Holds = true
				}
			}
			for _, in := range r.intents {
				if in.owner.Top() == top {
					ans.Holds = true
				}
			}
		}
		if acc := s.acceptors[q.Txn]; acc != nil {
			ans.Promised = acc.Promised
			ans.AccBal = acc.AccBal
			ans.AccCommit = acc.AccVal.Commit
		}
		return ans, true
	}
	return nil, false
}

// decidePaxos installs a decided outcome locally (logged, via the same
// self-apply seam as reap decisions) and broadcasts the learn message to
// every peer — the whole cluster resolves in one message, which is what
// keeps the post-crash in-doubt window at a single round-trip instead of
// a lease TTL.
func (s *dmServer) decidePaxos(top TxnID, val commit.Decision) {
	if s.resolved[top] != nil {
		return
	}
	if s.stats != nil {
		if val.Commit {
			s.stats.AcceptorResolvesCommitted.Inc()
		} else {
			s.stats.AcceptorResolvesAborted.Inc()
		}
	}
	dec := PaxosDecisionReq{
		Txn: top, Commit: val.Commit, Subs: stringsToTxns(val.Subs), Final: val.Final,
	}
	if s.selfApply != nil {
		s.selfApply(dec)
	} else {
		s.apply(dec)
	}
	for _, p := range s.peers {
		s.notifyPeer(p, dec)
	}
}

// --- client side: the coordinator's decide phase ---

// paxosCohort derives the transaction's acceptor cohort: the sorted union
// of the replica sets of every item the transaction (tree) wrote. Writing
// through a quorum of these same DMs is what makes co-location free — no
// separate acceptor fleet, and F replica failures leave a majority of any
// 2F+1-member cohort. Read-only transactions return nil: they have no
// outcome worth a consensus instance.
func (t *Txn) paxosCohort() []string {
	set := map[string]bool{}
	for _, item := range t.writtenItems() {
		it, ok := t.store.itemSpec(item)
		if !ok {
			continue
		}
		for _, dm := range it.DMs {
			set[dm] = true
		}
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for dm := range set {
		out = append(out, dm)
	}
	sort.Strings(out)
	return out
}

// paxosDecide is the coordinator's commit decision under PaxosCommit: fan
// out Phase-2a accepts at ballot 0 to the whole cohort and wait for ALL
// answers (not first-to-majority — every ack is a durable log write we
// paid for; stragglers only cost latency already spent). Outcomes:
//
//   - a majority of OKs, or a Decided-commit answer (recovery resolved
//     the instance first): nil error — proceed to the learn fan-out.
//   - a Decided-abort answer: conflict error; the ordinary abort/restart
//     path is safe (consensus decided abort, no DM can hold a commit).
//   - no majority, nothing possibly delivered: nothing anywhere remembers
//     ballot 0, so the ordinary abort path is safe too.
//   - no majority, but at least one accept may have landed: inDoubt —
//     the caller must NOT abort (an acceptor majority may yet assemble
//     around the commit); acceptor recovery owns the outcome.
func (t *Txn) paxosDecide(ctx context.Context, cohort []string) (inDoubt bool, err error) {
	s := t.store
	req := PaxosAcceptReq{
		Txn: t.id, Ballot: 0, Commit: true,
		Subs: t.committedSubs(), Final: t.finalVNs(),
		Cohort: cohort,
	}
	type vote struct {
		acked   bool
		reached bool // an attempt may have been delivered (send not refused locally)
		decided bool
		decCom  bool
	}
	votes := make([]vote, len(cohort))
	var wg sync.WaitGroup
	for i, dm := range cohort {
		wg.Add(1)
		go func(i int, dm string) {
			defer wg.Done()
			for attempt := 0; attempt <= s.opts.lockRetries; attempt++ {
				if ctx.Err() != nil {
					return
				}
				budget, derr := s.callBudget(ctx)
				if derr != nil {
					return
				}
				callStart := time.Now()
				cctx, cancel := context.WithTimeout(ctx, budget)
				raw, cerr := s.client.Call(cctx, dm, req)
				cancel()
				if cerr != nil {
					// The call may still have been delivered and logged — only
					// the answer is missing. That possibility is what makes
					// the no-majority case in-doubt rather than abortable.
					votes[i].reached = true
					if ctx.Err() == nil {
						s.observeDM(dm, false, 0)
					}
					s.backoff(ctx, attempt)
					continue
				}
				s.observeDM(dm, true, time.Since(callStart))
				votes[i].reached = true
				switch ans := raw.(type) {
				case PaxosAcceptResp:
					if ans.Decided {
						votes[i].decided, votes[i].decCom = true, ans.DecCommit
						return
					}
					if ans.OK {
						votes[i].acked = true
						return
					}
					// A recovery proposer promised a higher ballot here. Our
					// ballot-0 instance lost; recovery owns the outcome.
					return
				default:
					s.backoff(ctx, attempt)
				}
			}
		}(i, dm)
	}
	wg.Wait()
	acked, reached := 0, 0
	for _, v := range votes {
		if v.decided {
			// Recovery decided while we were deciding: adopt — the learn
			// fan-out (commit) or conflict restart (abort) follows it.
			if v.decCom {
				return false, nil
			}
			return false, &ConflictError{Txn: t.id, Phase: "decide", Attempts: 1}
		}
		if v.acked {
			acked++
		}
		if v.reached {
			reached++
		}
	}
	s.Stats.PaxosAccepts.Add(int64(acked))
	if acked >= commit.Quorum(len(cohort)) {
		s.Stats.PaxosCommits.Inc()
		return false, nil
	}
	if reached == 0 {
		// Every send was refused before it left this process: no acceptor
		// can have logged ballot 0, so the ordinary abort path is safe.
		return false, &UnavailableError{Txn: t.id, Phase: "decide", Attempts: 1, Missing: cohort}
	}
	return true, &InDoubtError{Txn: t.id, Acked: acked, Cohort: len(cohort)}
}

// ResolutionProbe asks one DM how a transaction stands there: resolution
// record, surviving locks/intentions, raw acceptor state. Diagnostics and
// chaos gating only.
func (s *Store) ResolutionProbe(ctx context.Context, dm string, txn TxnID) (ResolutionProbeResp, error) {
	cctx, cancel := context.WithTimeout(ctx, s.opts.callTimeout)
	defer cancel()
	raw, err := s.client.Call(cctx, dm, ResolutionProbeReq{Txn: txn})
	if err != nil {
		return ResolutionProbeResp{}, err
	}
	ans, ok := raw.(ResolutionProbeResp)
	if !ok {
		return ResolutionProbeResp{}, fmt.Errorf("cluster: probe of %s at %s: unexpected answer %T", txn, dm, raw)
	}
	return ans, nil
}
