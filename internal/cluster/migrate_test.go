package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/internal/sim"
)

// shardedCluster opens a two-group (three replicas each) sharded cluster
// whose keys are placed by a seeded ring, with leases on a manual clock so
// tests decide exactly when an abandoned migration coordinator's locks
// become reapable.
func shardedCluster(t *testing.T, seed int64, ttl time.Duration, keys []string, extra ...Option) (*Store, *sim.Network, *sim.ManualClock, *shard.Ring) {
	t.Helper()
	groups := []shard.Group{
		{Name: "g0", DMs: []string{"a0", "a1", "a2"}},
		{Name: "g1", DMs: []string{"b0", "b1", "b2"}},
	}
	ring, err := shard.New(seed, 64, groups)
	if err != nil {
		t.Fatal(err)
	}
	items, err := ShardItems(ring, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	net := sim.NewNetwork(sim.Config{
		MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond,
		Seed: seed, FateFeedback: true,
	})
	clk := sim.NewManualClock(time.Unix(0, 0))
	opts := append([]Option{
		WithSeed(seed),
		WithCallTimeout(25 * time.Millisecond),
		WithLeaseTTL(ttl),
		WithClock(clk),
		WithRetryBackoff(2 * time.Millisecond),
		WithSynchronousCleanup(true),
		WithRing(ring),
	}, extra...)
	store, err := Open(net, items, opts...)
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		store.Close()
		net.Close()
	})
	return store, net, clk, ring
}

// keyOn returns a key from keys the ring places on group, failing the test
// when the seed produced none.
func keyOn(t *testing.T, r *shard.Ring, keys []string, group string) string {
	t.Helper()
	for _, k := range keys {
		if r.Lookup(k) == group {
			return k
		}
	}
	t.Fatalf("no key maps to group %q (reseed the test)", group)
	return ""
}

func TestMigrateItemMovesValue(t *testing.T) {
	keys := shard.Keys("k", 12)
	store, net, _, ring := shardedCluster(t, 501, 50*time.Millisecond, keys)
	ctx := context.Background()
	key := keyOn(t, ring, keys, "g0")

	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, key, 7) }); err != nil {
		t.Fatal(err)
	}
	if err := store.MigrateItem(ctx, key, "g1"); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	net.Quiesce()
	if got := store.Stats.Migrations.Value(); got != 1 {
		t.Fatalf("Migrations = %d, want 1", got)
	}
	if g := store.Ring().Lookup(key); g != "g1" {
		t.Fatalf("ring places %q on %q after migrate, want g1", key, g)
	}
	// The client's own spec now names the new group's replicas.
	for _, it := range store.Items() {
		if it.Name != key {
			continue
		}
		for _, dm := range it.DMs {
			if dm[0] != 'b' {
				t.Fatalf("spec of %q still names old replica %s: %v", key, dm, it.DMs)
			}
		}
	}
	// Value survived the cutover, and the item is fully writable after.
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, key)
		if err != nil {
			return err
		}
		if v != 7 {
			t.Errorf("read %v after migrate, want 7", v)
		}
		return tx.Write(ctx, key, 8)
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, key)
		if err == nil && v != 8 {
			t.Errorf("read %v, want 8", v)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Migrating an item already on the target group is a no-op.
	if err := store.MigrateItem(ctx, key, "g1"); err != nil {
		t.Fatalf("idempotent migrate: %v", err)
	}
	if got := store.Stats.Migrations.Value(); got != 1 {
		t.Fatalf("no-op migrate bumped Migrations to %d", got)
	}
}

// TestMigrateStaleClientRedirect: a client still believing the old
// placement reads through retired replicas, absorbs their WrongShardResp
// redirect transparently, and ends up with the adopted placement.
func TestMigrateStaleClientRedirect(t *testing.T) {
	keys := shard.Keys("k", 12)
	store, net, _, ring := shardedCluster(t, 502, 50*time.Millisecond, keys)
	ctx := context.Background()
	key := keyOn(t, ring, keys, "g0")

	items, err := ShardItems(ring, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := OpenClient(net, items,
		WithSeed(1502), WithCallTimeout(25*time.Millisecond),
		WithRetryBackoff(2*time.Millisecond), WithSynchronousCleanup(true),
		WithRing(ring))
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()

	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, key, 41) }); err != nil {
		t.Fatal(err)
	}
	// Prime the stale client's believed config under the old placement.
	if err := stale.Run(ctx, func(tx *Txn) error {
		_, err := tx.Read(ctx, key)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.MigrateItem(ctx, key, "g1"); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	net.Quiesce()

	// The stale client's next read fans out to retired replicas and must
	// come back with the committed value anyway.
	if err := stale.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, key)
		if err != nil {
			return err
		}
		if v != 41 {
			t.Errorf("stale client read %v, want 41", v)
		}
		return nil
	}); err != nil {
		t.Fatalf("stale read after migrate: %v", err)
	}
	if stale.Stats.WrongShardRedirects.Value() == 0 {
		t.Fatal("stale client never saw a WrongShard redirect")
	}
	if g := stale.Ring().Lookup(key); g != "g1" {
		t.Fatalf("stale client's ring still places %q on %q", key, g)
	}
	// Writes route to the new group too.
	if err := stale.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, key, 42) }); err != nil {
		t.Fatalf("stale write after migrate: %v", err)
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, key)
		if err == nil && v != 42 {
			t.Errorf("read %v, want the stale client's 42", v)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateCrashBeforeCommitRecovers: a coordinator that dies before any
// CommitTopReq leaves only leased locks behind. Once the lease lapses the
// reaper presumes abort, the item is untouched on the old group, and a
// retried migration completes.
func TestMigrateCrashBeforeCommitRecovers(t *testing.T) {
	ttl := 50 * time.Millisecond
	keys := shard.Keys("k", 12)
	store, net, clk, ring := shardedCluster(t, 503, ttl, keys,
		WithLockRetries(5), WithTxnRetries(5))
	ctx := context.Background()
	key := keyOn(t, ring, keys, "g0")

	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, key, 5) }); err != nil {
		t.Fatal(err)
	}
	err := store.MigrateItemOpts(ctx, key, "g1", MigrateOptions{Crash: MigrateCrashBeforeCommit})
	if !errors.Is(err, ErrMigrationAbandoned) {
		t.Fatalf("crash-before-commit returned %v, want ErrMigrationAbandoned", err)
	}
	net.Quiesce()
	if got := store.Stats.Migrations.Value(); got != 0 {
		t.Fatalf("abandoned migration counted as completed (%d)", got)
	}
	if g := store.Ring().Lookup(key); g != "g0" {
		t.Fatalf("abandoned migration moved the ring placement to %q", g)
	}
	clk.Advance(ttl + time.Millisecond)

	// The item is not wedged: a conflicting writer triggers the inquiry,
	// every peer answers unknown, and the orphaned coordinator reaps away.
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, key, 6) }); err != nil {
		t.Fatalf("write after abandoned migration: %v", err)
	}
	net.Quiesce()
	if store.Stats.OrphanReapsAborted.Value() == 0 {
		t.Fatal("abandoned coordinator was never reaped")
	}
	// And the migration itself can be retried to completion.
	clk.Advance(ttl + time.Millisecond)
	if err := store.MigrateItem(ctx, key, "g1"); err != nil {
		t.Fatalf("retried migration: %v", err)
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, key)
		if err == nil && v != 6 {
			t.Errorf("read %v after retried migration, want 6", v)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateCrashMidCommitConverges covers both sides of the commit
// point. Delivering one CommitTopReq decides commit: the reaper's peer
// inquiry finds the record and completes the cutover. Delivering zero
// leaves a presumed abort: the item stays wholly on the old group. Either
// way no item wedges and no value is lost.
func TestMigrateCrashMidCommitConverges(t *testing.T) {
	for _, tc := range []struct {
		name    string
		deliver int
	}{
		{"deliver0-abort", 0},
		{"deliver1-commit", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ttl := 50 * time.Millisecond
			keys := shard.Keys("k", 12)
			store, net, clk, ring := shardedCluster(t, 504+int64(tc.deliver), ttl, keys,
				WithLockRetries(8), WithTxnRetries(8))
			ctx := context.Background()
			key := keyOn(t, ring, keys, "g0")

			if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, key, 9) }); err != nil {
				t.Fatal(err)
			}
			err := store.MigrateItemOpts(ctx, key, "g1",
				MigrateOptions{Crash: MigrateCrashMidCommit, CrashDeliver: tc.deliver})
			if !errors.Is(err, ErrMigrationAbandoned) {
				t.Fatalf("mid-commit crash returned %v, want ErrMigrationAbandoned", err)
			}
			net.Quiesce()
			clk.Advance(ttl + time.Millisecond)

			// The value must be readable and writable regardless of which
			// way the crash resolved; the copy preserved the value, so both
			// outcomes serve 9.
			if err := store.Run(ctx, func(tx *Txn) error {
				v, rerr := tx.Read(ctx, key)
				if rerr != nil {
					return rerr
				}
				if v != 9 {
					t.Errorf("read %v after mid-commit crash, want 9", v)
				}
				return nil
			}); err != nil {
				t.Fatalf("read after mid-commit crash: %v", err)
			}
			if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, key, 10) }); err != nil {
				t.Fatalf("write after mid-commit crash: %v", err)
			}
			net.Quiesce()
			if tc.deliver == 0 {
				if store.Stats.OrphanReapsAborted.Value() == 0 {
					t.Fatal("zero-delivery crash: coordinator never reaped as presumed abort")
				}
			} else {
				if store.Stats.OrphanReapsCommitted.Value() == 0 {
					t.Fatal("one-delivery crash: stragglers never applied the peer commit record")
				}
			}
			if err := store.Run(ctx, func(tx *Txn) error {
				v, rerr := tx.Read(ctx, key)
				if rerr == nil && v != 10 {
					t.Errorf("read %v, want 10", v)
				}
				return rerr
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMigrateInvalidatesHints: a freshness hint cached before a migration
// points at a replica the cutover retires. The ring-epoch invalidation
// must clear it — a single-replica read against the retired holder would
// otherwise be one partition away from serving a superseded version.
func TestMigrateInvalidatesHints(t *testing.T) {
	keys := shard.Keys("k", 12)
	store, net, _, ring := shardedCluster(t, 506, 50*time.Millisecond, keys,
		WithReadLease(true))
	ctx := context.Background()
	key := keyOn(t, ring, keys, "g0")

	// A committed write primes the fast-lane cache with an old-group holder.
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, key, 5) }); err != nil {
		t.Fatal(err)
	}
	dm, ok := store.HintTarget(key)
	if !ok || dm[0] != 'a' {
		t.Fatalf("hint prime: target %q ok=%v, want an a-replica", dm, ok)
	}

	if err := store.MigrateItem(ctx, key, "g1"); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	net.Quiesce()
	if dm, ok := store.HintTarget(key); ok {
		t.Fatalf("hint survived the cutover: still targets %q", dm)
	}

	// The next read goes the quorum path against the new group and sees the
	// migrated value; any hint it relearns names a new-group replica.
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, key)
		if err == nil && v != 5 {
			t.Errorf("read %v after migrate, want 5", v)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if dm, ok := store.HintTarget(key); ok && dm[0] != 'b' {
		t.Fatalf("relearned hint targets retired replica %q", dm)
	}
}
