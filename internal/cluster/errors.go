package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Sentinel errors. Structured errors returned by the store wrap these, so
// errors.Is(err, ErrConflict) / errors.Is(err, ErrUnavailable) keep
// working for callers that do not need the detail.
var (
	// ErrConflict means a lock conflict persisted past the retry budget;
	// the transaction aborted and may be re-run.
	ErrConflict = errors.New("cluster: lock conflict")
	// ErrUnavailable means no read or write quorum was reachable.
	ErrUnavailable = errors.New("cluster: quorum unavailable")
	// ErrTxnDone means the transaction already committed or aborted.
	ErrTxnDone = errors.New("cluster: transaction finished")
	// ErrLeaseExpired means the transaction's lock lease lapsed before the
	// commit point and could not be renewed everywhere — some replica may
	// already have reaped the transaction as a presumed abort, so committing
	// would be unsafe. The transaction aborted; Run restarts it like a lock
	// conflict.
	ErrLeaseExpired = errors.New("cluster: lock lease expired")
	// ErrOverloaded means replicas shed the request at admission (bounded
	// queue full) or discarded it expired-on-arrival. The work was refused,
	// not half-done: no locks were taken by the shed calls, so a retry —
	// if the retry budget allows one — is safe.
	ErrOverloaded = errors.New("cluster: replica overloaded")
	// ErrDegraded means the store is in brownout (read-only degraded) mode:
	// write quorums were recently unreachable or shed, so write-locking
	// operations fail fast instead of queueing more doomed work. Reads
	// still assemble read quorums. The store exits brownout automatically
	// when the failure detector sees the replicas recover.
	ErrDegraded = errors.New("cluster: degraded read-only mode")
)

// LeaseExpiredError reports which replica refused (or failed) the
// pre-commit lease renewal. It wraps both ErrLeaseExpired and ErrConflict:
// the transaction's locks are gone exactly as after a conflict-driven
// abort, and a fresh attempt is the right response, so Run's conflict
// restart logic applies.
type LeaseExpiredError struct {
	// Txn is the transaction whose lease lapsed.
	Txn TxnID
	// DM is the replica that refused or failed the renewal.
	DM string
}

func (e *LeaseExpiredError) Error() string {
	return fmt.Sprintf(
		"cluster: lease of %s expired before commit (renewal refused or unreachable at %s); the transaction may have been reaped as a presumed abort and was aborted locally — it is safe to re-run",
		e.Txn, e.DM)
}

func (e *LeaseExpiredError) Unwrap() []error { return []error{ErrLeaseExpired, ErrConflict} }

// ConflictError reports a lock conflict that exhausted the retry budget.
// It wraps ErrConflict, so errors.Is(err, ErrConflict) still matches;
// errors.As exposes the detail.
type ConflictError struct {
	// Item is the data item whose lock could not be acquired.
	Item string
	// Txn is the transaction that gave up.
	Txn TxnID
	// Phase is the quorum phase that conflicted ("read", "write",
	// "reconfigure").
	Phase string
	// Attempts is how many times the phase was tried (first try included).
	Attempts int
	// Responded lists the DMs that answered the final attempt (sorted);
	// DMs that reported the conflict are among them.
	Responded []string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf(
		"cluster: %s phase of %s on item %q hit a lock conflict after %d attempt(s) (responding DMs: %s); another transaction holds the lock — retry with backoff or raise WithLockRetries",
		e.Phase, e.Txn, e.Item, e.Attempts, dmList(e.Responded))
}

func (e *ConflictError) Unwrap() error { return ErrConflict }

// UnavailableError reports that a quorum phase could not assemble any
// read or write quorum from the replicas that answered. It wraps
// ErrUnavailable.
type UnavailableError struct {
	// Item is the data item being accessed.
	Item string
	// Txn is the transaction that failed.
	Txn TxnID
	// Phase is the quorum phase that failed ("read", "write",
	// "reconfigure", "commit", "abort").
	Phase string
	// Attempts is how many times the phase was tried.
	Attempts int
	// Responded lists the DMs that answered (sorted).
	Responded []string
	// Missing lists configured DMs that never answered (sorted) —
	// crashed, partitioned, or too slow for the call timeout.
	Missing []string
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf(
		"cluster: %s phase of %s on item %q found no quorum after %d attempt(s): heard from %s, missing %s — check partitions/crashes or raise WithCallTimeout",
		e.Phase, e.Txn, e.Item, e.Attempts, dmList(e.Responded), dmList(e.Missing))
}

func (e *UnavailableError) Unwrap() error { return ErrUnavailable }

// OverloadedError reports that a quorum phase failed because replicas shed
// the request at admission or discarded it expired-on-arrival, and the
// retry budget (when one denied a retry) refused to add more load. It
// wraps ErrOverloaded.
type OverloadedError struct {
	// Item is the data item being accessed.
	Item string
	// Txn is the transaction that was refused.
	Txn TxnID
	// Phase is the quorum phase that was shed ("read", "write").
	Phase string
	// Attempts is how many times the phase was tried.
	Attempts int
	// Shed lists the DMs that explicitly rejected the request (sorted).
	Shed []string
	// Expired reports that the rejection was expired-on-arrival: the
	// request outlived its propagated deadline in a replica queue.
	Expired bool
	// BudgetDenied reports that the per-store retry budget refused a
	// retry that plain retry policy would have allowed.
	BudgetDenied bool
}

func (e *OverloadedError) Error() string {
	cause := "replicas shed the request at admission"
	if e.Expired {
		cause = "the request expired in a replica queue before service"
	}
	suffix := "retry with backoff once load drops"
	if e.BudgetDenied {
		suffix = "the retry budget refused further attempts — shed load upstream"
	}
	return fmt.Sprintf(
		"cluster: %s phase of %s on item %q overloaded after %d attempt(s): %s (shedding DMs: %s); %s",
		e.Phase, e.Txn, e.Item, e.Attempts, cause, dmList(e.Shed), suffix)
}

func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// DegradedError reports that a write-locking operation was refused because
// the store is in brownout (read-only) mode. It wraps both ErrDegraded and
// ErrUnavailable: the proximate cause of entering brownout is that write
// quorums stopped being serviceable, so callers that only check
// errors.Is(err, ErrUnavailable) keep doing the right thing.
type DegradedError struct {
	// Op is the refused operation ("write", "read-for-update",
	// "reconfigure").
	Op string
	// Item is the data item the operation targeted.
	Item string
	// Since is how many consecutive write-phase failures triggered the
	// brownout.
	Since int
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf(
		"cluster: %s on item %q refused — store is in read-only degraded mode after %d consecutive write-quorum failures; reads still work, writes resume automatically when replicas recover",
		e.Op, e.Item, e.Since)
}

func (e *DegradedError) Unwrap() []error { return []error{ErrDegraded, ErrUnavailable} }

// WrongShardError reports that an operation reached replicas that retired
// the item after a live migration moved it to a different replica group.
// By the time it surfaces the store has already adopted the redirect — the
// item's replica set, believed config, and ring override all point at the
// new group — so it wraps ErrConflict: a Run retry (or the router's
// retry-once) re-executes against the new placement, exactly like a
// restart after a conflict-driven abort.
type WrongShardError struct {
	// Item is the migrated data item.
	Item string
	// Txn is the transaction that hit the redirect.
	Txn TxnID
	// Phase names the quorum phase ("read", "write", ...).
	Phase string
	// Group, Epoch and DMs are the redirect's payload: the replica group
	// now owning the item, the ring epoch at cutover, and the new replica
	// set.
	Group string
	Epoch int
	DMs   []string
}

func (e *WrongShardError) Error() string {
	return fmt.Sprintf(
		"cluster: %s phase of %s on item %q hit retired replicas — item now lives on group %q (ring epoch %d, DMs %s); placement adopted, retry the transaction",
		e.Phase, e.Txn, e.Item, e.Group, e.Epoch, dmList(e.DMs))
}

func (e *WrongShardError) Unwrap() error { return ErrConflict }

func dmList(dms []string) string {
	if len(dms) == 0 {
		return "none"
	}
	sorted := append([]string(nil), dms...)
	sort.Strings(sorted)
	return strings.Join(sorted, ",")
}
