package cluster

import "encoding/gob"

// Wire registration: every protocol request and response type is registered
// with gob exactly once, here. Two consumers share the registry — the
// write-ahead log (walRecord carries requests through an interface field)
// and the TCP transport (frames carry requests and responses the same way).
// A type missing from this list would encode fine in-process over the sim
// backend and then fail the moment it crossed a real socket or a log
// replay, so the list is exhaustive by construction: msgs.go types appear
// here in declaration order, and TestWireRoundTrip walks them all.

func init() {
	RegisterWireTypes()
}

// RegisterWireTypes registers every cluster protocol type for gob
// transport. It is idempotent (gob tolerates re-registration of the same
// concrete type under the same name) and runs automatically from this
// package's init; external transports only need it when they encode
// cluster traffic without importing the types' package — which cannot
// happen in this repo, so it is exported mainly as documentation of the
// wire surface.
func RegisterWireTypes() {
	// Requests.
	gob.Register(ReadReq{})
	gob.Register(WriteReq{})
	gob.Register(ConfigWriteReq{})
	gob.Register(ReleaseReq{})
	gob.Register(CommitSubReq{})
	gob.Register(AbortReq{})
	gob.Register(CommitTopReq{})
	gob.Register(RepairReq{})
	gob.Register(PingReq{})
	gob.Register(InspectReq{})
	gob.Register(RenewLeaseReq{})
	gob.Register(ResolutionQueryReq{})
	gob.Register(ResolutionAnswer{})
	gob.Register(HintReadReq{})
	gob.Register(HintGrantReq{})
	gob.Register(HintFenceReq{})
	gob.Register(ReapReq{})
	gob.Register(AdoptItemReq{})
	gob.Register(RetireItemReq{})
	gob.Register(RingReq{})
	gob.Register(RingUpdateReq{})
	gob.Register(PaxosAcceptReq{})
	gob.Register(PaxosPrepareReq{})
	gob.Register(PaxosDecisionReq{})
	gob.Register(PaxosRecoverQuery{})
	gob.Register(PaxosRecoverPromise{})
	gob.Register(PaxosRecoverAccept{})
	gob.Register(PaxosRecoverAccepted{})
	gob.Register(ResolutionProbeReq{})
	gob.Register(RebuildPullReq{})
	// Responses.
	gob.Register(ReadResp{})
	gob.Register(WriteResp{})
	gob.Register(Ack{})
	gob.Register(OverloadedResp{})
	gob.Register(InspectResp{})
	gob.Register(HintMissResp{})
	gob.Register(WrongShardResp{})
	gob.Register(RingResp{})
	gob.Register(PaxosAcceptResp{})
	gob.Register(ResolutionProbeResp{})
	gob.Register(QuarantinedResp{})
	gob.Register(RebuildPullResp{})
}
