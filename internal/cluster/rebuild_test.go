package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/wal"
)

// walPathOf exposes one DM's log directory to the tests.
func walPathOf(t *testing.T, store *Store, dm string) string {
	t.Helper()
	store.mu.Lock()
	h := store.dms[dm]
	store.mu.Unlock()
	if h == nil || h.walPath == "" {
		t.Fatalf("no durable DM %q", dm)
	}
	return h.walPath
}

// TestCorruptLogQuarantineAndRebuild is the tentpole end-to-end: a replica
// whose log is corrupted at rest comes back QUARANTINED (serving the typed
// refusal, not garbage), the cluster keeps serving through the remaining
// majority, and a peer rebuild restores the replica's committed state and
// rejoins it — after which the rebuilt state is itself durable.
func TestCorruptLogQuarantineAndRebuild(t *testing.T) {
	net, store, _ := openDurable(t, 121, WithWALOptions(wal.WithFsync(false), wal.WithSegmentBytes(256)))
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	for i := 1; i <= 8; i++ {
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", i*10) }); err != nil {
			t.Fatal(err)
		}
	}
	pre, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt dm0's log at rest and restart it: the restart must succeed —
	// as a quarantined slot, not a serving replica.
	dir := walPathOf(t, store, "dm0")
	if err := store.StopDM("dm0"); err != nil {
		t.Fatal(err)
	}
	ffs := wal.NewFaultFS(7)
	if _, _, ok, err := ffs.CorruptSegmentFrame(dir); err != nil || !ok {
		t.Fatalf("CorruptSegmentFrame: ok=%v err=%v", ok, err)
	}
	if _, err := store.RestartDM("dm0"); err != nil {
		t.Fatalf("restart onto corrupt log must quarantine, not fail: %v", err)
	}
	if got := store.QuarantinedDMs(); len(got) != 1 || got[0] != "dm0" {
		t.Fatalf("QuarantinedDMs = %v, want [dm0]", got)
	}
	if store.Stats.Quarantines.Value() != 1 {
		t.Fatalf("Quarantines = %d, want 1", store.Stats.Quarantines.Value())
	}

	// The quarantined replica answers every request with the typed refusal.
	raw, err := store.client.Call(ctx, "dm0", PingReq{Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	q, ok := raw.(QuarantinedResp)
	if !ok || q.DM != "dm0" || q.Reason == "" {
		t.Fatalf("quarantined ping answered %#v, want QuarantinedResp{DM: dm0}", raw)
	}

	// The cluster still serves reads and writes through the healthy majority.
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := ReadAs[int](ctx, tx, "x")
		if err != nil {
			return err
		}
		if v != 80 {
			t.Errorf("read %d with dm0 quarantined, want 80", v)
		}
		return tx.Write(ctx, "x", 90)
	}); err != nil {
		t.Fatalf("cluster must serve around one quarantined replica: %v", err)
	}

	// Peer rebuild: dm0 pulls the committed state back from dm1/dm2.
	rst, err := store.RebuildReplica(ctx, "dm0")
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if rst.Items != 1 || rst.Peers != 2 {
		t.Fatalf("RebuildStats = %+v, want Items=1 Peers=2", rst)
	}
	if got := store.QuarantinedDMs(); len(got) != 0 {
		t.Fatalf("QuarantinedDMs after rebuild = %v, want none", got)
	}
	if store.Stats.Rebuilds.Value() != 1 || store.Stats.RebuiltItems.Value() != 1 {
		t.Fatalf("rebuild counters = %d/%d, want 1/1",
			store.Stats.Rebuilds.Value(), store.Stats.RebuiltItems.Value())
	}
	post, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if post.VN < pre.VN || post.Val == nil {
		t.Fatalf("rebuilt state %+v regressed below pre-corruption %+v", post, pre)
	}

	// The rebuilt state is durable: an amnesia restart replays it from the
	// fresh log's synthetic snapshot.
	stats := amnesia(t, store, "dm0")
	if !stats.FromSnapshot {
		t.Fatalf("restart after rebuild recovered %+v, want FromSnapshot", stats)
	}
	again, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if again.VN != post.VN {
		t.Fatalf("rebuilt state not durable: vn %d after restart, had %d", again.VN, post.VN)
	}
	// And the cluster is fully writable again through all three replicas.
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 100) }); err != nil {
		t.Fatal(err)
	}
}

// TestAppendFailureQuarantinesAtRuntime is the fail-closed regression at
// cluster level: a replica whose log starts refusing appends (ENOSPC)
// answers the write that hit the fault — and everything after it — with
// QuarantinedResp instead of acknowledging state its disk no longer backs.
func TestAppendFailureQuarantinesAtRuntime(t *testing.T) {
	ffs := wal.NewFaultFS(11)
	net, store, _ := openDurable(t, 131, WithWALOptions(wal.WithFsync(false), wal.WithFS(ffs)))
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 1) }); err != nil {
		t.Fatal(err)
	}
	ffs.FailAppends(walPathOf(t, store, "dm0"), true)

	// A raw logged write against dm0 must be refused with the typed error,
	// not acked.
	raw, err := store.client.Call(ctx, "dm0", WriteReq{Txn: "zz.t1", Item: "x", VN: 50, Val: 5, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if q, ok := raw.(QuarantinedResp); !ok || q.DM != "dm0" {
		t.Fatalf("write onto full disk answered %#v, want QuarantinedResp", raw)
	}
	if store.Stats.Quarantines.Value() != 1 {
		t.Fatalf("Quarantines = %d, want 1", store.Stats.Quarantines.Value())
	}
	if got := store.QuarantinedDMs(); len(got) != 1 || got[0] != "dm0" {
		t.Fatalf("QuarantinedDMs = %v, want [dm0]", got)
	}
	// Sticky: even an unlogged read is refused now.
	raw, err = store.client.Call(ctx, "dm0", PingReq{Seq: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.(QuarantinedResp); !ok {
		t.Fatalf("quarantine not sticky: ping answered %#v", raw)
	}
	// The cluster writes on through the majority.
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 2) }); err != nil {
		t.Fatalf("cluster must tolerate one full disk: %v", err)
	}

	// Heal the disk, rebuild, and verify the replica carries the committed
	// state — including writes it was quarantined for.
	ffs.FailAppends(walPathOf(t, store, "dm0"), false)
	if _, err := store.RebuildReplica(ctx, "dm0"); err != nil {
		t.Fatalf("rebuild after heal: %v", err)
	}
	post, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if post.Val != 2 {
		t.Fatalf("rebuilt replica serves %v, want 2", post.Val)
	}
}

// TestRebuildRequiresAllPeers: a rebuild that cannot hear every peer fails
// and leaves the replica quarantined — acceptor state witnessed only by the
// missing peer would otherwise be lost (acceptor amnesia).
func TestRebuildRequiresAllPeers(t *testing.T) {
	net, store, dms := openDurable(t, 141, WithWALOptions(wal.WithFsync(false), wal.WithSegmentBytes(256)))
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	for i := 1; i <= 6; i++ {
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", i) }); err != nil {
			t.Fatal(err)
		}
	}
	dir := walPathOf(t, store, "dm0")
	if err := store.StopDM("dm0"); err != nil {
		t.Fatal(err)
	}
	ffs := wal.NewFaultFS(13)
	if _, _, ok, err := ffs.CorruptSegmentFrame(dir); err != nil || !ok {
		t.Fatalf("CorruptSegmentFrame: ok=%v err=%v", ok, err)
	}
	if _, err := store.RestartDM("dm0"); err != nil {
		t.Fatal(err)
	}
	// One peer down: the pull must fail, and dm0 must stay quarantined and
	// still answer the typed refusal.
	if err := store.StopDM(dms[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := store.RebuildReplica(ctx, "dm0"); err == nil {
		t.Fatal("rebuild with a peer down must fail")
	}
	if got := store.QuarantinedDMs(); len(got) != 1 || got[0] != "dm0" {
		t.Fatalf("QuarantinedDMs after failed rebuild = %v, want [dm0]", got)
	}
	raw, err := store.client.Call(ctx, "dm0", PingReq{Seq: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.(QuarantinedResp); !ok {
		t.Fatalf("slot after failed rebuild answered %#v, want QuarantinedResp", raw)
	}
}

// TestRebuildRestoresResolvedAndAcceptors: resolution records and Paxos
// acceptor hard state survive a rebuild — the merged acceptor carries the
// maximum promise and the highest-ballot accepted value among the peers.
func TestRebuildRestoresResolvedAndAcceptors(t *testing.T) {
	net, store, dms := openDurable(t, 151, WithWALOptions(wal.WithFsync(false), wal.WithSegmentBytes(256)))
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	for i := 1; i <= 6; i++ {
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 3) }); err != nil {
			t.Fatal(err)
		}
	}
	var resolvedTxn TxnID
	store.mu.Lock()
	for tid := range store.dms["dm1"].srv.resolved {
		resolvedTxn = tid
	}
	store.mu.Unlock()
	if resolvedTxn == "" {
		t.Fatal("no resolved transaction recorded at dm1")
	}

	// Plant an undecided Paxos instance across the cohort: ballot-0 accepts
	// at all three, then a higher-ballot prepare at dm1 only.
	orphan := TxnID("zz.t77")
	for _, dm := range dms {
		raw, err := store.client.Call(ctx, dm, PaxosAcceptReq{
			Txn: orphan, Ballot: 0, Commit: true, Subs: nil,
			Final: map[string]int{"x": 9}, Cohort: dms,
		})
		if err != nil {
			t.Fatal(err)
		}
		if pr, ok := raw.(PaxosAcceptResp); !ok || !pr.OK {
			t.Fatalf("accept at %s answered %#v", dm, raw)
		}
	}
	if raw, err := store.client.Call(ctx, "dm1", PaxosPrepareReq{Txn: orphan, Ballot: 4, Cohort: dms}); err != nil {
		t.Fatal(err)
	} else if ack, ok := raw.(Ack); !ok || !ack.OK {
		t.Fatalf("prepare at dm1 answered %#v", raw)
	}

	dir := walPathOf(t, store, "dm0")
	if err := store.StopDM("dm0"); err != nil {
		t.Fatal(err)
	}
	ffs := wal.NewFaultFS(17)
	if _, _, ok, err := ffs.CorruptSegmentFrame(dir); err != nil || !ok {
		t.Fatalf("CorruptSegmentFrame: ok=%v err=%v", ok, err)
	}
	if _, err := store.RestartDM("dm0"); err != nil {
		t.Fatal(err)
	}
	rst, err := store.RebuildReplica(ctx, "dm0")
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if rst.Resolved == 0 || rst.Acceptors != 1 {
		t.Fatalf("RebuildStats = %+v, want Resolved>0 Acceptors=1", rst)
	}

	store.mu.Lock()
	srv := store.dms["dm0"].srv
	res := srv.resolved[resolvedTxn]
	acc := srv.acceptors[orphan]
	store.mu.Unlock()
	if res == nil || !res.committed {
		t.Fatalf("resolved record %s not restored: %+v", resolvedTxn, res)
	}
	if acc == nil {
		t.Fatal("acceptor state not restored")
	}
	if acc.Promised != 4 {
		t.Fatalf("merged promise watermark = %d, want the max (4)", acc.Promised)
	}
	if acc.AccBal != 0 || !acc.AccVal.Commit || acc.AccVal.Final["x"] != 9 {
		t.Fatalf("merged accepted value = bal %d %+v, want ballot-0 commit", acc.AccBal, acc.AccVal)
	}
}

// TestRenewLeaseRefusedForUnknownTxn: the rebuilt-replica commit fence. A
// DM with leases armed refuses to renew a transaction it holds no trace of
// — so a transaction whose locks died with a corrupted-and-rebuilt replica
// aborts at its pre-commit fence instead of committing over the loss.
func TestRenewLeaseRefusedForUnknownTxn(t *testing.T) {
	srv := newDMState("dm0", []ItemSpec{{Name: "x", DMs: []string{"dm0"}, Config: quorum.Majority([]string{"dm0"})}})
	srv.configureLeases(time.Minute, nil, nil, nil)

	if resp, handled := srv.coordinate(RenewLeaseReq{Txn: "c1.t1"}); !handled || resp.(Ack).OK {
		t.Fatalf("renewal for unknown txn = %#v, want refusal", resp)
	}
	// A granted lock makes the transaction known; renewal succeeds.
	if resp, _ := srv.apply(ReadReq{Txn: "c1.t2/0", Item: "x", Lock: LockWrite, Seq: 1}); !resp.(ReadResp).OK {
		t.Fatalf("grant refused: %#v", resp)
	}
	if resp, _ := srv.coordinate(RenewLeaseReq{Txn: "c1.t2"}); !resp.(Ack).OK {
		t.Fatalf("renewal for lock holder = %#v, want OK", resp)
	}
	// An intention alone (lock promoted away mid-tree) is a trace too.
	srv.replicas["x"].intents = append(srv.replicas["x"].intents, intent{owner: "c1.t3/0", vn: 9, val: 1})
	if resp, _ := srv.coordinate(RenewLeaseReq{Txn: "c1.t3"}); !resp.(Ack).OK {
		t.Fatalf("renewal for intent owner = %#v, want OK", resp)
	}
}

// TestResolvedRetentionCompacts: past the retention cap the oldest
// resolution records shed their subs payload but keep their verdict — late
// commit retries still get the idempotent refusal/ack.
func TestResolvedRetentionCompacts(t *testing.T) {
	srv := newDMState("dm0", []ItemSpec{{Name: "x", DMs: []string{"dm0"}, Config: quorum.Majority([]string{"dm0"})}})
	var stats Stats
	srv.stats = &stats
	srv.configureRetention(2)

	for i := 1; i <= 3; i++ {
		tid := TxnID(fmt.Sprintf("c1.t%d", i))
		srv.markResolved(tid, true, []TxnID{tid + "/0"})
	}
	if stats.ResolvedEvictions.Value() != 1 {
		t.Fatalf("ResolvedEvictions = %d, want 1", stats.ResolvedEvictions.Value())
	}
	oldest := srv.resolved["c1.t1"]
	if oldest == nil || !oldest.committed {
		t.Fatalf("verdict must outlive retention: %+v", oldest)
	}
	if oldest.subs != nil {
		t.Fatalf("oldest record kept subs %v past the cap", oldest.subs)
	}
	if srv.resolved["c1.t3"].subs == nil {
		t.Fatal("newest record lost its subs inside the window")
	}
	// The tombstone still makes CommitTopReq idempotent...
	if resp, mutated := srv.apply(CommitTopReq{Txn: "c1.t1"}); !resp.(Ack).OK || mutated {
		t.Fatalf("late commit retry on tombstone = %#v mutated=%v, want idempotent ack", resp, mutated)
	}
	// ...and still answers resolution inquiries with the verdict.
	if resp, _ := srv.coordinate(ResolutionQueryReq{Txn: "c1.t1", From: "dm9"}); !resp.(Ack).OK {
		t.Fatalf("inquiry on tombstone: %#v", resp)
	}
	// Re-resolving an already-resolved id never re-enters the eviction log.
	srv.markResolved("c1.t3", true, []TxnID{"c1.t3/0"})
	if n := len(srv.resolvedLog); n != 2 {
		t.Fatalf("duplicate resolution re-logged: log has %d entries, want 2", n)
	}
}

// TestServeDMAutoRebuild: a process-hosted replica (ServeDM) restarted onto
// a corrupted log automatically rebuilds from its live peers instead of
// coming up quarantined.
func TestServeDMAutoRebuild(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{
		MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond,
		Seed: 161, FateFeedback: true,
	})
	defer net.Close()
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	dir := t.TempDir()

	hosts := map[string]*DMHost{}
	for _, dm := range dms {
		h, err := ServeDM(net, dm, items, WithDurability(dir), WithWALOptions(wal.WithFsync(false), wal.WithSegmentBytes(256)))
		if err != nil {
			t.Fatal(err)
		}
		hosts[dm] = h
	}
	client, err := OpenClient(net, items)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if err := client.Run(context.Background(), func(tx *Txn) error { return tx.Write(context.Background(), "x", i) }); err != nil {
			t.Fatal(err)
		}
	}

	// Kill dm0's process, scramble its log, restart it with the same flags.
	hosts["dm0"].Close()
	ffs := wal.NewFaultFS(19)
	if _, _, ok, err := ffs.CorruptSegmentFrame(filepath.Join(dir, "dm0")); err != nil || !ok {
		t.Fatalf("CorruptSegmentFrame: ok=%v err=%v", ok, err)
	}
	h, err := ServeDM(net, "dm0", items, WithDurability(dir), WithWALOptions(wal.WithFsync(false), wal.WithSegmentBytes(256)))
	if err != nil {
		t.Fatal(err)
	}
	hosts["dm0"] = h
	if h.Quarantined != nil {
		t.Fatalf("auto-rebuild failed, host quarantined: %v", h.Quarantined)
	}
	if h.Rebuilt == nil || h.Rebuilt.Items != 1 {
		t.Fatalf("Rebuilt = %+v, want 1 item restored", h.Rebuilt)
	}
	if h.Stats.Quarantines.Value() != 1 || h.Stats.Rebuilds.Value() != 1 {
		t.Fatalf("host counters = %d/%d, want 1/1",
			h.Stats.Quarantines.Value(), h.Stats.Rebuilds.Value())
	}
	// The rebuilt replica serves the committed value.
	resp, err := client.Inspect(context.Background(), "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Val != 6 {
		t.Fatalf("rebuilt host serves %v, want 6", resp.Val)
	}
	client.Close()
	for _, h := range hosts {
		h.Close()
	}
}

// TestCoordinateRebuildServesMovedMarkers: a peer's answer to a rebuild
// pull carries retirement markers for migrated items, and the rebuild merge
// re-homes the marker under the rebuilding DM's id.
func TestCoordinateRebuildServesMovedMarkers(t *testing.T) {
	srv := newDMState("dm1", []ItemSpec{{Name: "x", DMs: []string{"dm1"}, Config: quorum.Majority([]string{"dm1"})}})
	srv.moved["y"] = WrongShardResp{DM: "dm1", Item: "y", Epoch: 2, Group: "g1", DMs: []string{"dm7"}, Gen: 3}

	raw, handled := srv.coordinateRebuild(RebuildPullReq{For: "dm0", Items: []string{"x", "y"}})
	if !handled {
		t.Fatal("RebuildPullReq not handled")
	}
	resp := raw.(RebuildPullResp)
	if !resp.OK || resp.From != "dm1" {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Items) != 1 || resp.Items[0].Item != "x" || !resp.Items[0].Has {
		t.Fatalf("items = %+v, want x only", resp.Items)
	}
	if w, ok := resp.Moved["y"]; !ok || w.Gen != 3 {
		t.Fatalf("moved = %+v, want y@gen3", resp.Moved)
	}
}
