package cluster

import (
	"context"
	"errors"
	"sort"
	"time"

	"repro/internal/quorum"
)

// memberResp pairs a replica's answer with its name, so the read phase can
// fold versions and repair stale members afterwards.
type memberResp struct {
	dm   string
	resp ReadResp
}

// collector is the pure state machine of one first-to-quorum fan-out: it
// tracks which replicas were asked, which answered how, and whether the
// responses received so far cover any quorum. It has no concurrency of its
// own — runPhase drives it from a single goroutine — which keeps it
// directly unit-testable.
type collector struct {
	quorums []quorum.Set

	issued  map[string]int // request copies sent, per DM
	replied map[string]int // responses received, per DM (any kind)
	granted map[string]bool
	held    map[string]bool // grant reported a pre-existing lock
	busy    map[string]bool // DM refused for a lock conflict at least once
	shed    map[string]bool // DM rejected at admission (overloaded)
	resps   map[string]memberResp
	wrong   map[string]WrongShardResp // DM answered "item moved" redirect
	quar    map[string]bool           // DM answered quarantined (serving nothing)
	dups    int                       // responses beyond the first, per DM, summed
	expired bool                      // at least one shed was expired-on-arrival
}

func newCollector(quorums []quorum.Set) *collector {
	return &collector{
		quorums: quorums,
		issued:  map[string]int{},
		replied: map[string]int{},
		granted: map[string]bool{},
		held:    map[string]bool{},
		busy:    map[string]bool{},
		shed:    map[string]bool{},
		resps:   map[string]memberResp{},
	}
}

// issue records that one request copy was sent to dm.
func (c *collector) issue(dm string) { c.issued[dm]++ }

// reply folds one response in. Responses past the first per DM are counted
// as duplicates, but a grant always registers even if an earlier copy was
// refused: the DM holds a lock for us now, and forgetting that would leak
// it. The first grant's payload wins — its Held bit is the one that
// reflects the lock's true provenance.
func (c *collector) reply(dm string, granted, busy, held bool, m memberResp) {
	c.replied[dm]++
	if c.replied[dm] > 1 {
		c.dups++
	}
	if busy {
		c.busy[dm] = true
	}
	if granted && !c.granted[dm] {
		c.granted[dm] = true
		c.held[dm] = held
		c.resps[dm] = m
	}
}

// done reports whether the grants so far cover some quorum.
func (c *collector) done() bool {
	_, ok := c.winner()
	return ok
}

// winner returns the smallest quorum fully covered by grants, if any.
func (c *collector) winner() (quorum.Set, bool) {
	var best quorum.Set
	for _, q := range c.quorums {
		if best != nil && len(q) >= len(best) {
			continue
		}
		if q.SubsetOf(c.granted) {
			best = q
		}
	}
	return best, best != nil
}

// outstanding reports whether dm has request copies in flight (or lost):
// more issued than answered.
func (c *collector) outstanding(dm string) bool {
	return c.issued[dm] > c.replied[dm]
}

// hedgeTargets returns the DMs worth re-asking: no response yet and fewer
// than max copies issued. Busy or refusing DMs have answered — re-sending
// within the phase would just spin on the conflict.
func (c *collector) hedgeTargets(targets []string, max int) []string {
	var out []string
	for _, dm := range targets {
		if c.replied[dm] == 0 && c.issued[dm] < max {
			out = append(out, dm)
		}
	}
	return out
}

// noteShed folds in an explicit admission rejection. The DM answered — it
// is alive, just refusing load — so it counts as replied: hedging it would
// only add to the overload, and it is not "missing" for error reporting.
func (c *collector) noteShed(dm string, expired bool) {
	c.replied[dm]++
	if c.replied[dm] > 1 {
		c.dups++
	}
	c.shed[dm] = true
	if expired {
		c.expired = true
	}
}

// noteQuarantined folds in a storage-fault refusal. Like a shed, the DM
// answered — it is alive but its log is untrusted, so it grants nothing
// until a peer rebuild. Counting it as replied keeps hedges off it (every
// copy would get the same refusal) and the phase fails over to quorums
// that avoid it.
func (c *collector) noteQuarantined(dm string) {
	c.replied[dm]++
	if c.replied[dm] > 1 {
		c.dups++
	}
	if c.quar == nil {
		c.quar = map[string]bool{}
	}
	c.quar[dm] = true
}

// noteWrongShard folds in a migration redirect. Like a shed, the DM
// answered — it just no longer hosts the item — so it counts as replied
// and is never hedged or reported missing.
func (c *collector) noteWrongShard(dm string, w WrongShardResp) {
	c.replied[dm]++
	if c.replied[dm] > 1 {
		c.dups++
	}
	if c.wrong == nil {
		c.wrong = map[string]WrongShardResp{}
	}
	if _, dup := c.wrong[dm]; !dup {
		c.wrong[dm] = w
	}
}

// sawWrongShard returns one redirect from the phase, lowest DM id first so
// the pick is deterministic under seeded replay.
func (c *collector) sawWrongShard() (WrongShardResp, bool) {
	if len(c.wrong) == 0 {
		return WrongShardResp{}, false
	}
	dms := make([]string, 0, len(c.wrong))
	for dm := range c.wrong {
		dms = append(dms, dm)
	}
	sort.Strings(dms)
	return c.wrong[dms[0]], true
}

// sawBusy reports whether any DM refused for a lock conflict.
func (c *collector) sawBusy() bool { return len(c.busy) > 0 }

// sawShed reports whether any DM rejected the phase at admission.
func (c *collector) sawShed() bool { return len(c.shed) > 0 }

// shedDMs returns every DM that rejected at admission, sorted.
func (c *collector) shedDMs() []string {
	out := make([]string, 0, len(c.shed))
	for dm := range c.shed {
		out = append(out, dm)
	}
	sort.Strings(out)
	return out
}

// respondedDMs returns every DM that answered at least once, sorted.
func (c *collector) respondedDMs() []string {
	out := make([]string, 0, len(c.replied))
	for dm := range c.replied {
		out = append(out, dm)
	}
	sort.Strings(out)
	return out
}

// missingDMs returns the targets that never answered, sorted.
func (c *collector) missingDMs(targets []string) []string {
	var out []string
	for _, dm := range targets {
		if c.replied[dm] == 0 {
			out = append(out, dm)
		}
	}
	sort.Strings(out)
	return out
}

// grantedResps returns the payloads of all granting DMs, sorted by name.
func (c *collector) grantedResps() []memberResp {
	out := make([]memberResp, 0, len(c.resps))
	for _, m := range c.resps {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].dm < out[j].dm })
	return out
}

// winnerResps returns the payloads of the winning quorum's members only.
// Folding versions over just the winner is sufficient: the winner is a
// read-quorum, and quorum intersection guarantees it contains the highest
// committed version any configuration write-quorum installed.
func (c *collector) winnerResps(win quorum.Set) []memberResp {
	out := make([]memberResp, 0, len(win))
	for dm := range win {
		if m, ok := c.resps[dm]; ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].dm < out[j].dm })
	return out
}

// phaseSpec describes one quorum phase to fan out.
type phaseSpec struct {
	item    string
	targets []string     // every replica the phase may ask
	quorums []quorum.Set // the quorums any of which completes the phase
	req     any          // the request, Seq already stamped
	seq     int          // the phase's sequence number
	isWrite bool         // write phases never release extra locks (intents need them)
}

// phaseResp is one RPC outcome delivered to the fan-out loop.
type phaseResp struct {
	dm  string
	raw any
	err error
}

// parseGrant normalizes a DM response. Read payloads are preserved; write
// acks carry no state.
func parseGrant(raw any) (granted, busy, held bool, resp ReadResp) {
	switch v := raw.(type) {
	case ReadResp:
		return v.OK, v.Busy, v.Held, v
	case WriteResp:
		return v.OK, v.Busy, v.Held, ReadResp{}
	}
	return false, false, false, ReadResp{}
}

// runPhase broadcasts spec.req to every target concurrently and returns as
// soon as the grants cover any of spec.quorums ("first to quorum wins"),
// all targets have answered without covering one, or the phase times out.
// While waiting it hedges: every hedgeDelay it re-issues the request to
// targets that have not answered at all, up to hedgeMax copies each, so
// one slow replica cannot stall the phase. Returning cancels the phase
// context, abandoning in-flight copies; settlePhase squares that with the
// DMs.
func (t *Txn) runPhase(ctx context.Context, spec phaseSpec) *collector {
	st := t.store.opts
	col := newCollector(spec.quorums)
	// Deadline arithmetic: the phase budget is the call timeout clamped to
	// the caller's remaining deadline minus the hop allowance, so hedged
	// copies — which all derive from pctx — can never run on a fresh full
	// call timeout after the caller's own deadline has nearly elapsed. A
	// caller without budget left gets an empty collector without a single
	// send.
	budget, err := t.store.callBudget(ctx)
	if err != nil {
		return col
	}
	pctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()

	// Circuit-broken steering: with the failure detector on, suspects are
	// skipped (when healthy replicas still cover a quorum) except for the
	// occasional half-open probe copy, which is also exempt from hedging —
	// one trial per probe window is the whole point.
	board := t.store.health
	targets := spec.targets
	var probes map[string]bool
	if board != nil {
		var skipped int
		targets, probes, skipped = board.plan(spec.targets, spec.quorums)
		if skipped > 0 {
			t.store.Stats.SuspectSkips.Add(int64(skipped))
		}
		if len(probes) > 0 {
			t.store.Stats.ProbeTrials.Add(int64(len(probes)))
		}
	}

	results := make(chan phaseResp, len(spec.targets)*st.hedgeMax)
	inflight := 0
	issue := func(dm string) {
		col.issue(dm)
		inflight++
		go func() {
			cctx := pctx
			if board != nil && !probes[dm] {
				// Adaptive timeout: a replica that usually answers in
				// microseconds gets milliseconds, not the full phase budget,
				// so its failures feed the scoreboard quickly. Probes keep
				// the full budget — they exist to give a suspect every
				// chance to prove itself back.
				if d := board.timeout(dm, st.callTimeout); d < st.callTimeout {
					var ccancel context.CancelFunc
					cctx, ccancel = context.WithTimeout(pctx, d)
					defer ccancel()
				}
			}
			callStart := time.Now()
			raw, err := t.store.client.Call(cctx, dm, spec.req)
			if board != nil {
				if err == nil {
					board.observe(dm, true, time.Since(callStart))
				} else if !errors.Is(pctx.Err(), context.Canceled) || errors.Is(cctx.Err(), context.DeadlineExceeded) {
					// A copy abandoned because the phase already completed
					// says nothing about the replica; a per-call timeout or
					// a network-reported loss does.
					board.observe(dm, false, 0)
				}
			}
			results <- phaseResp{dm: dm, raw: raw, err: err}
		}()
	}
	for _, dm := range targets {
		issue(dm)
	}

	var hedgeC <-chan time.Time
	if st.hedgeDelay > 0 && st.hedgeMax > 1 {
		tick := time.NewTicker(st.hedgeDelay)
		defer tick.Stop()
		hedgeC = tick.C
	}

	for {
		select {
		case r := <-results:
			inflight--
			if r.err == nil {
				if o, ok := r.raw.(OverloadedResp); ok {
					col.noteShed(r.dm, o.Expired)
					if o.Expired {
						t.store.Stats.ExpiredOnArrival.Inc()
					} else {
						t.store.Stats.AdmissionSheds.Inc()
					}
				} else if w, ok := r.raw.(WrongShardResp); ok {
					col.noteWrongShard(r.dm, w)
				} else if _, ok := r.raw.(QuarantinedResp); ok {
					col.noteQuarantined(r.dm)
				} else {
					granted, busy, held, resp := parseGrant(r.raw)
					if busy {
						t.store.Stats.BusyRetries.Inc()
					}
					col.reply(r.dm, granted, busy, held, memberResp{dm: r.dm, resp: resp})
				}
			}
			if col.done() {
				return col
			}
			if inflight == 0 {
				// Every copy resolved without covering a quorum. Hedging
				// cannot help: it only re-asks targets that never answered,
				// and those have no copies left in flight to answer.
				return col
			}
		case <-hedgeC:
			for _, dm := range col.hedgeTargets(targets, st.hedgeMax) {
				if probes[dm] {
					continue // half-open probes get exactly one copy
				}
				t.store.Stats.Hedges.Inc()
				issue(dm)
			}
		case <-pctx.Done():
			return col
		}
	}
}

// settlePhase reconciles a finished fan-out with the DMs. Every replica
// that granted — or that might still grant to an abandoned in-flight copy
// — is marked touched so commit/abort control reaches it. Then, if the
// phase found a winning quorum, the grants it does not need are retracted:
// extra fresh read-phase locks are released outright (Moss fairness — a
// lock the transaction never uses should not block others), and abandoned
// copies are tombstoned so a late grant at the DM frees itself. Locks the
// transaction already held from earlier phases, and write locks backing
// buffered intentions, are never released; the DM enforces the same
// guards.
func (t *Txn) settlePhase(spec phaseSpec, col *collector) {
	win, won := col.winner()
	for _, dm := range spec.targets {
		switch {
		case col.granted[dm]:
			if spec.isWrite {
				t.touchWrite(dm)
			} else {
				t.touch(dm)
			}
			if won && !spec.isWrite && !win.Contains(dm) && !col.held[dm] {
				t.store.Stats.ExtraLockReleases.Inc()
				t.store.client.Notify(dm, ReleaseReq{Txn: t.id, Item: spec.item, Seq: spec.seq})
			}
		case col.outstanding(dm):
			t.touchTentative(dm)
			t.store.client.Notify(dm, ReleaseReq{Txn: t.id, Item: spec.item, Seq: spec.seq})
		}
	}
}

// union returns the sorted union of the quorums' members — the targets of
// a phase that may be completed by any of them.
func union(qs []quorum.Set) []string {
	set := map[string]bool{}
	for _, q := range qs {
		for n := range q {
			set[n] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
