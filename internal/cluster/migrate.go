package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/quorum"
	"repro/internal/shard"
)

// ErrMigrationAbandoned reports that a migration coordinator stopped at an
// injected crash stage: its transaction was neither committed nor aborted,
// so whatever locks and intentions it planted dangle until the lease
// reaper resolves them. Chaos campaigns inject these crashes and then
// verify the item is never wedged and never double-owned.
var ErrMigrationAbandoned = errors.New("cluster: migration coordinator crashed")

// MigrateCrashStage selects where a chaos-injected coordinator crash cuts
// a migration short. The stages bracket the commit point — the one moment
// whose outcome a crash can leave genuinely ambiguous.
type MigrateCrashStage int

const (
	// MigrateCrashNone runs the migration to completion.
	MigrateCrashNone MigrateCrashStage = iota
	// MigrateCrashBeforeCommit dies after the copy and config-record
	// phases buffered intentions everywhere but before any CommitTopReq
	// was sent. No DM can apply; once the coordinator's lease lapses the
	// reaper presumes abort, the intentions evaporate, and the item stays
	// wholly owned by the old group at the old generation.
	MigrateCrashBeforeCommit
	// MigrateCrashMidCommit dies partway through the commit broadcast:
	// CrashDeliver of the written DMs hear CommitTopReq, the rest never
	// do. Delivering even one copy decides the outcome (the commit-point
	// rule); the lease reaper's peer inquiry completes the broadcast at
	// the stragglers. Delivering zero leaves a presumed abort.
	MigrateCrashMidCommit
)

// MigrateOptions tunes a migration run; the zero value migrates cleanly.
type MigrateOptions struct {
	// Crash selects an injected coordinator crash stage.
	Crash MigrateCrashStage
	// CrashDeliver is, for MigrateCrashMidCommit, how many of the
	// written DMs (in sorted order) receive CommitTopReq before the
	// coordinator dies. Values past the written set mean everyone heard.
	CrashDeliver int
}

// MigrateItem moves item to the replica group named toGroup: copy, then
// cutover, under the same fences every write takes (DESIGN.md §10).
//
// The schedule is Section 4's reconfiguration chase aimed at a disjoint
// replica set. New-group DMs first adopt a placeholder replica (idempotent
// hard state). Then one coordinator transaction write-locks the item at a
// read-quorum of the old configuration — the fence: in-flight writers
// either commit before the migration's lock lands or conflict and retry
// after cutover — copies the fenced (vn, val) to a write-quorum of the new
// configuration, and buffers the config record (gen+1, newCfg) at write
// quorums of BOTH old and new configurations. Old-quorum copies are what
// redirect stale clients: their next read intersects one, sees Gen > its
// belief, and chases to the new placement. Commit applies everything
// atomically per DM; until then every read still assembles at the old
// group, so reads never block during the copy.
//
// After commit the old group's surplus replicas are retired best-effort:
// each drops its copy and keeps a durable moved-marker answering later
// requests with a WrongShardResp redirect. A failed retire is safe — the
// replica then still holds the gen+1 config record and redirects via the
// ordinary generation chase.
func (s *Store) MigrateItem(ctx context.Context, item, toGroup string) error {
	return s.MigrateItemOpts(ctx, item, toGroup, MigrateOptions{})
}

// MigrateItemOpts is MigrateItem with chaos-injection controls exposed.
func (s *Store) MigrateItemOpts(ctx context.Context, item, toGroup string, opts MigrateOptions) error {
	ring := s.Ring()
	if ring == nil {
		return fmt.Errorf("cluster: migrate %q: store is not sharded", item)
	}
	g, ok := ring.Group(toGroup)
	if !ok {
		return fmt.Errorf("cluster: migrate %q: unknown group %q", item, toGroup)
	}
	it, ok := s.itemSpec(item)
	if !ok {
		return fmt.Errorf("cluster: unknown item %q", item)
	}
	if err := s.writeGate("migrate", item); err != nil {
		return err
	}
	newDMs := append([]string(nil), g.DMs...)
	sort.Strings(newDMs)
	if sameStrings(it.DMs, newDMs) {
		return nil // already placed there
	}
	newCfg := quorum.Majority(newDMs)

	// Adopt round: every new-group DM must host a (zero-version)
	// placeholder before the copy phase can buffer intentions there.
	// Adoption is idempotent hard state; a DM that cannot be reached now
	// fails the migration before any lock was taken.
	for _, dm := range newDMs {
		if err := s.adoptAt(ctx, dm, item, it.Initial); err != nil {
			return fmt.Errorf("cluster: migrate %q: adopt at %s: %w", item, dm, err)
		}
	}

	// The coordinator transaction is assembled by hand rather than via
	// Run: crash stages must cut it at exact points (between fences,
	// mid-broadcast) that Run's loop never exposes, and an abandoned
	// coordinator must leave its locks dangling for the reaper instead of
	// aborting on the way out.
	t := &Txn{
		store:      s,
		id:         TxnID(fmt.Sprintf("%s.m%d", s.clientID, s.txnSeq.Add(1))),
		touched:    map[string]touchLevel{},
		leaseStamp: s.now(),
	}
	s.trackTxn(t)
	fail := func(err error) error {
		t.abort(ctx)
		s.untrackTxn(t)
		return err
	}

	res, err := t.readPhase(ctx, item, LockWrite)
	if err != nil {
		return fail(err)
	}
	if err := t.writeQuorum(ctx, item, "migrate", newCfg, func(seq int) any {
		return WriteReq{Txn: t.id, Item: item, VN: res.vn, Val: res.val, Seq: seq}
	}); err != nil {
		return fail(err)
	}
	mkCfg := func(seq int) any {
		return ConfigWriteReq{Txn: t.id, Item: item, Gen: res.gen + 1, Cfg: newCfg, Seq: seq}
	}
	// Both quorums unconditionally (Gifford's original rule): the old
	// quorum's record redirects stale clients, the new quorum's record is
	// the one the item lives under afterwards.
	if err := t.writeQuorum(ctx, item, "migrate", res.cfg, mkCfg); err != nil {
		return fail(err)
	}
	if err := t.writeQuorum(ctx, item, "migrate", newCfg, mkCfg); err != nil {
		return fail(err)
	}

	if opts.Crash == MigrateCrashBeforeCommit {
		// Simulated coordinator death: no abort, no commit. Locks and
		// intentions dangle until the lease reaper presumes abort.
		s.untrackTxn(t)
		s.traceEvent(string(t.id), "migrate", "%s: coordinator crashed before commit", item)
		return ErrMigrationAbandoned
	}

	if err := t.ensureLease(ctx); err != nil {
		s.Stats.LeaseExpiries.Inc()
		return fail(err)
	}
	if err := t.fenceHints(ctx); err != nil {
		return fail(err)
	}

	written, granted, tentative := t.controlSets()
	commit := CommitTopReq{Txn: t.id, Subs: t.committedSubs(), Final: t.finalVNs()}
	if opts.Crash == MigrateCrashMidCommit {
		// Deliver the commit to a prefix of the written DMs, then die.
		// One delivery decides commit (the first send is the commit
		// point); zero deliveries leave a presumed abort. Both outcomes
		// are legal — what chaos checks is that the cluster converges on
		// exactly one of them.
		n := opts.CrashDeliver
		if n > len(written) {
			n = len(written)
		}
		for _, dm := range written[:n] {
			budget, derr := s.callBudget(ctx)
			if derr != nil {
				break
			}
			cctx, cancel := context.WithTimeout(ctx, budget)
			_, _ = s.client.Call(cctx, dm, commit)
			cancel()
		}
		s.untrackTxn(t)
		s.traceEvent(string(t.id), "migrate",
			"%s: coordinator crashed mid-commit (%d/%d delivered)", item, n, len(written))
		return ErrMigrationAbandoned
	}

	missing := t.control(ctx, written, granted, tentative, commit)
	if len(missing) > 0 {
		s.traceEvent(string(t.id), "migrate", "%s: commit stragglers %v", item, missing)
	}
	t.primeHintTargets(missing)
	t.done = true
	s.untrackTxn(t)
	s.Stats.Commits.Inc()

	// Cutover is decided; fold it into this client's own placement state,
	// retire the old group's surplus replicas, and gossip the new ring.
	s.relocateItem(item, newDMs, res.gen+1, newCfg, toGroup, 0)
	newSet := map[string]bool{}
	for _, dm := range newDMs {
		newSet[dm] = true
	}
	ringAfter := s.Ring()
	retire := RetireItemReq{
		Item: item, Epoch: ringAfter.Epoch, Group: toGroup,
		DMs: newDMs, Gen: res.gen + 1, Cfg: newCfg,
	}
	for _, dm := range it.DMs {
		if !newSet[dm] {
			s.retireAt(ctx, dm, retire)
		}
	}
	s.gossipRing(ringAfter)
	s.Stats.Migrations.Inc()
	s.traceEvent(string(t.id), "migrate",
		"%s -> group %q (gen %d -> %d, epoch %d)", item, toGroup, res.gen, res.gen+1, ringAfter.Epoch)
	return nil
}

// adoptAt installs the placeholder replica for item at one DM, retrying
// transient failures. Adoption is idempotent, so retries are free.
func (s *Store) adoptAt(ctx context.Context, dm, item string, initial any) error {
	req := AdoptItemReq{Item: item, Initial: initial}
	var lastErr error
	for attempt := 0; attempt <= s.opts.lockRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		budget, derr := s.callBudget(ctx)
		if derr != nil {
			return derr
		}
		cctx, cancel := context.WithTimeout(ctx, budget)
		raw, err := s.client.Call(cctx, dm, req)
		cancel()
		if err == nil {
			if ack, ok := raw.(Ack); ok && ack.OK {
				return nil
			}
			lastErr = fmt.Errorf("%w: adopt refused by %s", ErrUnavailable, dm)
		} else {
			lastErr = fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
		s.backoff(ctx, attempt)
	}
	return lastErr
}

// retireAt asks one old-group DM to drop its replica and keep a durable
// redirect marker. Best-effort with a short retry: the DM refuses while
// any transaction still holds locks there (our own commit stragglers), and
// a refusal is safe — the replica keeps the gen+1 config record and
// redirects via the ordinary generation chase instead.
func (s *Store) retireAt(ctx context.Context, dm string, req RetireItemReq) {
	for attempt := 0; attempt <= tentativeControlRetries; attempt++ {
		if ctx.Err() != nil {
			return
		}
		budget, derr := s.callBudget(ctx)
		if derr != nil {
			return
		}
		cctx, cancel := context.WithTimeout(ctx, budget)
		raw, err := s.client.Call(cctx, dm, req)
		cancel()
		if err == nil {
			if ack, ok := raw.(Ack); ok && ack.OK {
				return
			}
		}
		s.backoff(ctx, attempt)
	}
	s.traceEvent("store", "migrate", "retire of %q at %s not acknowledged (safe: gen chase covers it)", req.Item, dm)
}

// gossipRing pushes the client's ring (with its fresh override and epoch)
// to every DM it knows, best-effort. Ring state at DMs is soft — a routing
// cache for RingReq clients — so a missed update only costs a later
// redirect, never correctness.
func (s *Store) gossipRing(r *shard.Ring) {
	if r == nil {
		return
	}
	s.mu.Lock()
	seen := map[string]bool{}
	var dms []string
	for _, it := range s.items {
		for _, dm := range it.DMs {
			if !seen[dm] {
				seen[dm] = true
				dms = append(dms, dm)
			}
		}
	}
	s.mu.Unlock()
	sort.Strings(dms)
	for _, dm := range dms {
		s.client.Notify(dm, RingUpdateReq{Ring: *r.Clone()})
	}
}
