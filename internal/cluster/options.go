package cluster

import (
	"time"

	"repro/internal/checker"
	"repro/internal/commit"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wal"
)

// settings is the resolved store configuration. Construct one with
// resolve(...); zero values never appear unless an option explicitly set
// them.
type settings struct {
	callTimeout  time.Duration
	hedgeDelay   time.Duration
	hedgeMax     int
	lockRetries  int
	retryBackoff time.Duration
	txnRetries   int
	readRepair   bool
	bothQuorums  bool
	sequential   bool
	seed         int64
	trace        *trace.Log
	history      *checker.Recorder
	syncCleanup  bool
	walDir       string
	walOpts      []wal.Option
	snapEvery    int
	leaseTTL     time.Duration
	health       bool
	fixedTimeout bool
	antiEntropy  time.Duration
	clock        transport.Clock
	readLease    bool
	readLeaseTTL time.Duration

	// resolvedRetention caps how many resolution records a DM keeps with
	// their full committed-subs payload; older ones compact to outcome
	// tombstones. <= 0 retains everything forever.
	resolvedRetention int

	clientTag string

	// Overload protection (see DESIGN.md §7).
	admitCap          int           // bounded DM admission queue; 0 = unbounded (off)
	serviceTime       time.Duration // modeled per-request service cost at DMs
	admitServeExpired bool          // ablation: serve expired-on-arrival work anyway
	retryRatio        float64       // retry budget deposit per first attempt; 0 = off
	inflightMax       int           // AIMD in-flight top-level txn ceiling; 0 = off
	brownoutAfter     int           // consecutive write-quorum failures before brownout; 0 = off
	hopAllowance      time.Duration // deadline budget reserved per fan-out hop

	// Sharded placement (see DESIGN.md §10). nil = unsharded.
	ring *shard.Ring

	// Commit protocol (see DESIGN.md §11). Zero value = TwoPhase.
	protocol commit.Protocol
}

func defaultSettings() settings {
	return settings{
		callTimeout:  100 * time.Millisecond,
		hedgeDelay:   5 * time.Millisecond,
		hedgeMax:     3,
		lockRetries:  12,
		retryBackoff: time.Millisecond,
		txnRetries:   8,
		clock:        transport.Wall,
		hopAllowance: time.Millisecond,
		readLeaseTTL: 50 * time.Millisecond,

		resolvedRetention: defaultResolvedRetention,
	}
}

// An Option configures a Store. Options state intent explicitly:
// WithLockRetries(0) means "no retries", not "use the default".
type Option func(*settings)

// resolve applies opts over the defaults.
func resolve(opts []Option) settings {
	s := defaultSettings()
	for _, o := range opts {
		o(&s)
	}
	return s
}

// WithCallTimeout bounds each quorum phase (the whole fan-out, hedges
// included) and each control RPC. Default 100ms.
func WithCallTimeout(d time.Duration) Option {
	return func(s *settings) { s.callTimeout = d }
}

// WithHedgeDelay sets how long a fan-out waits before re-issuing a phase's
// request to replicas that have not answered. Zero disables hedging.
// Default 5ms.
func WithHedgeDelay(d time.Duration) Option {
	return func(s *settings) { s.hedgeDelay = d }
}

// WithHedgeMax caps the total request copies sent to one replica in one
// phase (first send included). Values below 1 are treated as 1. Default 3.
func WithHedgeMax(n int) Option {
	return func(s *settings) {
		if n < 1 {
			n = 1
		}
		s.hedgeMax = n
	}
}

// WithLockRetries sets how many times a phase retries after a lock
// conflict before the transaction aborts with a ConflictError. Zero means
// fail on the first conflict. Default 12.
func WithLockRetries(n int) Option {
	return func(s *settings) { s.lockRetries = n }
}

// WithRetryBackoff sets the base backoff between lock-conflict retries
// (jittered, grows linearly with the attempt). Default 1ms.
func WithRetryBackoff(d time.Duration) Option {
	return func(s *settings) { s.retryBackoff = d }
}

// WithTxnRetries sets how many times Run restarts a transaction that
// aborted with ErrConflict. Zero means no restarts. Default 8.
func WithTxnRetries(n int) Option {
	return func(s *settings) { s.txnRetries = n }
}

// WithReadRepair enables Gifford read repair: quorum reads that observe
// stale replicas push the quorum-maximum version to them in the
// background. Default off.
func WithReadRepair(on bool) Option {
	return func(s *settings) { s.readRepair = on }
}

// WithWriteConfigToBothQuorums makes Reconfigure write the new
// configuration to a write quorum of the new configuration as well as the
// old one (Section 4's belt-and-suspenders variant). Default off: the old
// write quorum alone is sufficient.
func WithWriteConfigToBothQuorums(on bool) Option {
	return func(s *settings) { s.bothQuorums = on }
}

// WithSequentialPhases restores the seed's quorum assembly: pick one
// shuffled quorum set per attempt and query only it, instead of the
// first-to-quorum fan-out. Kept as an ablation baseline for benchmarks.
func WithSequentialPhases(on bool) Option {
	return func(s *settings) { s.sequential = on }
}

// WithSeed seeds the store's private RNG (quorum shuffling, backoff
// jitter) for reproducible runs. Default 0.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.seed = seed }
}

// WithTrace directs structured per-operation events (reads, writes,
// commits, aborts, reconfigurations) to the given trace log. Nil disables
// tracing.
func WithTrace(l *trace.Log) Option {
	return func(s *settings) { s.trace = l }
}

// WithHistory attaches a checker recorder: every committed top-level
// transaction's reads and writes (with their version-number witnesses)
// are recorded into it for offline serializability checking. Operations
// of aborted transactions — and of aborted subtransactions inside
// committed ones — are never recorded. Nil disables recording.
func WithHistory(r *checker.Recorder) Option {
	return func(s *settings) { s.history = r }
}

// WithDurability gives every DM the store spawns a segmented write-ahead
// log under dir (one subdirectory per DM): state-mutating requests are
// logged and made durable before they are acknowledged, and Open replays an
// existing log to rebuild each DM's versioned value, configuration
// generation, lock table and pending intentions — so a restarted replica
// keeps every promise the pre-crash one made. Empty dir (the default)
// keeps DMs volatile. Only meaningful on Open; OpenClient spawns no
// servers.
func WithDurability(dir string) Option {
	return func(s *settings) { s.walDir = dir }
}

// WithWALOptions forwards options to each DM's write-ahead log — segment
// size, fsync, group commit. Only meaningful together with WithDurability.
func WithWALOptions(opts ...wal.Option) Option {
	return func(s *settings) { s.walOpts = opts }
}

// WithSnapshotEvery sets how many logged records a durable DM absorbs
// before writing a compacting snapshot. Values below 1 keep the default
// (1024).
func WithSnapshotEvery(n int) Option {
	return func(s *settings) { s.snapEvery = n }
}

// WithSynchronousCleanup makes commit/abort control rounds wait for the
// best-effort cleanup of tentatively-touched DMs instead of detaching it.
// The default (off) matches production behaviour — a dead replica the
// transaction never used must not stall commits — but detached cleanup
// leaves goroutines drawing from the store's RNG after the operation
// returns, which perturbs replay; the deterministic chaos harness turns
// this on.
func WithSynchronousCleanup(on bool) Option {
	return func(s *settings) { s.syncCleanup = on }
}

// WithLeaseTTL enables lock leases and orphan reaping: every lock grant
// carries a lease of duration ttl, renewed implicitly by further grants,
// by the background renewer (wall clock only), and synchronously at every
// touched DM just before the commit point (the lease fence). A DM that
// runs into an expired-lease holder polls its peers for a commit record
// and — when every peer answers "unknown" — reaps the holder as a
// presumed abort, so a crashed client can never permanently wedge an item.
// Zero (the default) disables leases entirely. The ttl must comfortably
// exceed a transaction's inter-phase gaps; the TTL/3 background renewer
// covers long-running transactions.
func WithLeaseTTL(ttl time.Duration) Option {
	return func(s *settings) { s.leaseTTL = ttl }
}

// WithHealthProbes enables the per-replica failure detector: call outcomes
// feed a health scoreboard, fan-outs steer toward healthy replicas and
// probe suspects with single half-open trials instead of hedging them, and
// per-replica call timeouts adapt to observed latency EWMAs. Default off.
func WithHealthProbes(on bool) Option {
	return func(s *settings) { s.health = on }
}

// WithFixedTimeouts disables the failure detector's latency-adaptive
// per-replica call timeouts, keeping the scoreboard and circuit breaker
// but issuing every call with the full WithCallTimeout budget.
// Deterministic harnesses need this: adaptive timeouts derive from
// *measured* wall-clock EWMAs, so scheduler noise could time out a call
// in one run and not its replay, forking the seeded message stream.
func WithFixedTimeouts(on bool) Option {
	return func(s *settings) { s.fixedTimeout = on }
}

// WithAntiEntropy starts a background sweeper that, every interval,
// inspects every replica and pushes the observed maximum committed version
// and configuration generation to stale ones — so long partitions heal
// during idle ticks without waiting for a lucky read-repair. Zero (the
// default) disables the loop; Store.SweepOnce is always available for
// explicit passes.
func WithAntiEntropy(interval time.Duration) Option {
	return func(s *settings) { s.antiEntropy = interval }
}

// WithReadLease enables the freshness-hint read fast lane (DESIGN.md §9):
// replicas grant themselves per-item freshness hints at commit-apply and
// via the anti-entropy sweeper's unanimity proof, and clients try a single
// hinted replica before assembling a read quorum, falling back
// transparently on any miss. Writes pay for it: before its commit point a
// writer fences the hint at EVERY replica of each written item (not just a
// write quorum), and under the wall clock an unreachable replica makes the
// writer wait out one hint TTL. Off by default.
func WithReadLease(on bool) Option {
	return func(s *settings) { s.readLease = on }
}

// WithReadLeaseTTL sets the freshness-hint lifetime — the staleness bound
// an unreachable replica's hint can survive a fence by, and therefore the
// longest a partitioned writer may stall waiting one out. Only meaningful
// with WithReadLease. Values at or below zero keep the default (50ms).
func WithReadLeaseTTL(ttl time.Duration) Option {
	return func(s *settings) {
		if ttl > 0 {
			s.readLeaseTTL = ttl
		}
	}
}

// defaultResolvedRetention is how many resolution records a DM keeps with
// their full committed-subs payload before the oldest compact to outcome
// tombstones (the verdict alone). The window only needs to outlive the
// straggler horizon — a replica that missed a commit hears about it via the
// lease reaper or anti-entropy long before 4096 later transactions resolve.
const defaultResolvedRetention = 4096

// WithResolvedRetention caps how many resolution records each DM retains
// with their full committed-subs payload (DESIGN.md §12). Past the cap, the
// oldest records are compacted to outcome tombstones: the committed/aborted
// verdict is kept forever — late CommitTopReq retries, lease-resolution
// inquiries and settle probes still get an authoritative answer — but the
// subs list, the bulk of the record, is dropped. Values at or below zero
// disable compaction (retain everything, the pre-§12 behavior). Default
// 4096.
func WithResolvedRetention(n int) Option {
	return func(s *settings) { s.resolvedRetention = n }
}

// WithClock injects the clock lock leases expire against. Deterministic
// harnesses pass a sim.ManualClock and advance it explicitly between
// rounds; the default is the wall clock. The background lease renewer only
// runs under the wall clock — under a manual clock, timer-driven renewal
// traffic would fork seeded replays.
func WithClock(c transport.Clock) Option {
	return func(s *settings) {
		if c != nil {
			s.clock = c
		}
	}
}

// WithClientTag prefixes every transaction ID this store's client mints.
// Clients within one process are already disjoint (a process-wide
// sequence numbers them), but clients in *different processes* of one
// multi-process cluster are not: each fresh process mints c1 again, and a
// DM that already resolved one process's c1.t1 refuses the other's as a
// replay. Multi-process deployments must tag each client process uniquely
// — qcstore client uses its PID. Empty (the default) adds no prefix.
func WithClientTag(tag string) Option {
	return func(s *settings) { s.clientTag = tag }
}

// WithAdmissionCapacity bounds every DM's service queue to n queued bulk
// requests (reads + writes; control traffic — commit, abort, release,
// lease, reap — is exempt and always admitted). A full queue sheds the
// request with an explicit OverloadedResp instead of queueing or silently
// dropping it, and requests whose propagated deadline passes while queued
// are discarded at dequeue. Zero (the default) keeps the unbounded
// pre-overload-protection behavior. See DESIGN.md §7.
func WithAdmissionCapacity(n int) Option {
	return func(s *settings) {
		if n < 0 {
			n = 0
		}
		s.admitCap = n
	}
}

// WithServiceTime models the CPU cost of serving one request at a DM:
// each dequeued request sleeps d before its handler runs, giving replicas
// a finite service rate worth protecting. Only meaningful together with
// WithAdmissionCapacity; zero (the default) serves instantly.
func WithServiceTime(d time.Duration) Option {
	return func(s *settings) { s.serviceTime = d }
}

// WithExpiredService makes DMs serve expired-on-arrival requests anyway
// (counting them as dead work) instead of discarding them at dequeue —
// the no-deadline-propagation ablation arm of overload experiments.
// Default off.
func WithExpiredService(on bool) Option {
	return func(s *settings) { s.admitServeExpired = on }
}

// WithRetryBudget enables the SRE-style per-store retry budget: every
// first attempt of a quorum phase deposits ratio tokens into a bucket and
// every conflict/overload/lease retry withdraws one, so retry traffic can
// never exceed the given fraction of first-attempt traffic. When the
// bucket is empty the retry is refused and the operation fails with the
// underlying error (marked BudgetDenied on overloads) instead of adding
// load to an overloaded cluster. Ratio at or below zero (the default)
// disables the budget.
func WithRetryBudget(ratio float64) Option {
	return func(s *settings) {
		if ratio < 0 {
			ratio = 0
		}
		s.retryRatio = ratio
	}
}

// WithInflightLimit caps concurrently running top-level transactions
// (Run callers) with an AIMD limiter: the ceiling starts at n, shrinks
// multiplicatively when transactions fail on overload or quorum timeouts,
// and regrows additively on success — so offered load adapts to what the
// replicas can actually serve. Zero (the default) disables the limiter.
func WithInflightLimit(n int) Option {
	return func(s *settings) {
		if n < 0 {
			n = 0
		}
		s.inflightMax = n
	}
}

// WithBrownoutThreshold arms graceful read-only degradation: after n
// consecutive write-quorum phase failures caused by overload or
// unavailability, the store enters brownout — write-locking operations
// fail fast with a DegradedError while reads keep assembling read quorums
// — and exits automatically when the failure detector sees replicas
// recover (or a periodic probe write-phase succeeds). Zero (the default)
// disables brownout.
func WithBrownoutThreshold(n int) Option {
	return func(s *settings) {
		if n < 0 {
			n = 0
		}
		s.brownoutAfter = n
	}
}

// WithHopAllowance reserves d of the caller's remaining context budget at
// every fan-out hop: a phase call's timeout is min(WithCallTimeout,
// remaining-deadline − d), and when the remainder is not positive the call
// fails fast instead of being sent — work that cannot finish in time is
// refused at the earliest possible hop. Default 1ms.
func WithHopAllowance(d time.Duration) Option {
	return func(s *settings) {
		if d < 0 {
			d = 0
		}
		s.hopAllowance = d
	}
}

// WithRing arms sharded placement with an explicit consistent-hash ring:
// the store (and every DM it spawns) adopts a deep copy as its placement
// view, and the freshness-hint cache is stamped with the ring's epoch so
// placement changes invalidate it. The ring decides which replica group
// owns which item; the item specs passed to Open must agree with it
// (ShardItems derives them). nil leaves the store unsharded.
func WithRing(r *shard.Ring) Option {
	return func(s *settings) {
		if r != nil {
			s.ring = r.Clone()
		}
	}
}

// WithCommitProtocol selects how top-level transactions reach their commit
// point (DESIGN.md §11). TwoPhase (the default) is the classic presumed-
// abort protocol: the first CommitTopReq send is the commit point, and a
// coordinator that dies in the commit window leaves its locks in doubt
// until the lease reaper's TTL + inquiry round presumes it aborted.
// PaxosCommit inserts one consensus instance per transaction before the
// commit broadcast: the outcome is durably accepted at a majority of
// acceptors (co-located on the written items' replica groups) first, so
// after ANY single crash — the coordinator's included — the outcome is
// reconstructed from the surviving acceptors in one round-trip instead of
// being presumed after a TTL. Clean-path cost: one extra logged fan-out
// round over the cohort per commit.
func WithCommitProtocol(p commit.Protocol) Option {
	return func(s *settings) { s.protocol = p }
}

// WithShards is WithRing for callers that start from a group list: it
// builds the deterministic ring (seed, vnodes, groups) inline. Invalid
// group sets are surfaced at Open via the ring validation, not silently
// ignored — the option stores a ring only when construction succeeds, and
// Open fails on the unplaceable items otherwise.
func WithShards(seed int64, vnodes int, groups ...shard.Group) Option {
	return func(s *settings) {
		if r, err := shard.New(seed, vnodes, groups); err == nil {
			s.ring = r
		}
	}
}
