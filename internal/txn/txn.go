// Package txn provides transaction automata for the model layer: the root
// transaction T0 (modeling the external environment) and a configurable
// user-transaction automaton. The paper deliberately leaves user
// transactions unspecified beyond preserving well-formedness; User supports
// the spectrum of behaviors the model allows — requesting children in any
// order, tolerating aborts, and even requesting to commit before learning
// the fate of all requested children.
package txn

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/ioa"
	"repro/internal/tree"
)

// Root is the automaton for the root transaction T0. It wakes on CREATE(T0)
// and requests the creation of each of its children (the top-level user
// transactions); it may neither commit nor abort, so it never issues a
// REQUEST-COMMIT.
type Root struct {
	tr       *tree.Tree
	children map[ioa.TxnName]bool

	awake     bool
	requested map[ioa.TxnName]bool
}

var _ ioa.Automaton = (*Root)(nil)

// NewRoot returns the root automaton managing all children of T0 in tr.
func NewRoot(tr *tree.Tree) *Root {
	r := &Root{tr: tr, children: map[ioa.TxnName]bool{}, requested: map[ioa.TxnName]bool{}}
	for _, c := range tr.Children(tree.Root) {
		r.children[c] = true
	}
	return r
}

// Name implements ioa.Automaton.
func (r *Root) Name() string { return string(tree.Root) }

// HasOp implements ioa.Automaton.
func (r *Root) HasOp(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpCreate:
		return op.Txn == tree.Root
	case ioa.OpRequestCreate, ioa.OpCommit, ioa.OpAbort:
		return r.children[op.Txn]
	default:
		return false
	}
}

// IsOutput implements ioa.Automaton.
func (r *Root) IsOutput(op ioa.Op) bool {
	return op.Kind == ioa.OpRequestCreate && r.children[op.Txn]
}

// Enabled returns REQUEST-CREATE for every child not yet requested.
func (r *Root) Enabled() []ioa.Op {
	if !r.awake {
		return nil
	}
	var out []ioa.Op
	for _, c := range sortedNames(r.children) {
		if !r.requested[c] {
			out = append(out, ioa.RequestCreate(c))
		}
	}
	return out
}

// Step implements ioa.Automaton.
func (r *Root) Step(op ioa.Op) error {
	switch op.Kind {
	case ioa.OpCreate:
		r.awake = true
	case ioa.OpRequestCreate:
		if !r.awake || r.requested[op.Txn] {
			return fmt.Errorf("%w: %v", ioa.ErrNotEnabled, op)
		}
		r.requested[op.Txn] = true
	case ioa.OpCommit, ioa.OpAbort:
		// Results reported to the environment; no state needed.
	default:
		return fmt.Errorf("root: unexpected op %v", op)
	}
	return nil
}

// ChildResult records the fate of a requested child.
type ChildResult struct {
	// Committed is true if the child committed; false if it aborted.
	Committed bool
	// Value is the child's commit value (nil for aborts).
	Value ioa.Value
}

// ValueFn computes a transaction's REQUEST-COMMIT value from the fates of
// its children. It must be a pure function of its argument so that the
// automaton stays state-deterministic.
type ValueFn func(results map[ioa.TxnName]ChildResult) ioa.Value

// User is a non-access transaction automaton with configurable behavior.
// The zero behavior (no options) requests all managed children in arbitrary
// order, waits for every requested child to return, and then requests to
// commit with a nil value.
type User struct {
	tr   *tree.Tree
	name ioa.TxnName

	children map[ioa.TxnName]bool
	order    []ioa.TxnName // request order when sequential

	sequential bool
	eager      bool
	valueFn    ValueFn

	awake           bool
	requestedCommit bool
	requested       map[ioa.TxnName]bool
	nRequested      int
	results         map[ioa.TxnName]ChildResult
}

var _ ioa.Automaton = (*User)(nil)

// Option configures a User automaton.
type Option func(*User)

// Sequential makes the transaction request its children strictly in tree
// order, waiting for each requested child to return before requesting the
// next (the Argus discipline the paper mentions).
func Sequential() Option { return func(u *User) { u.sequential = true } }

// Eager allows the transaction to request to commit at any time after its
// creation, without discovering the fate of all requested children — a
// behavior the model explicitly permits.
func Eager() Option { return func(u *User) { u.eager = true } }

// WithValue sets the function computing the commit value.
func WithValue(fn ValueFn) Option { return func(u *User) { u.valueFn = fn } }

// Manage restricts the set of children this automaton manages to the given
// names. Unmanaged children (e.g. reconfigure-TMs driven by a spy) are not
// part of this automaton's operations at all, so the user program is
// unaware of their invocation and return, as Section 4 requires.
func Manage(children ...ioa.TxnName) Option {
	return func(u *User) {
		u.children = map[ioa.TxnName]bool{}
		for _, c := range children {
			u.children[c] = true
		}
	}
}

// NewUser returns a user-transaction automaton for name, managing all of
// name's children in tr unless Manage overrides the set.
func NewUser(tr *tree.Tree, name ioa.TxnName, opts ...Option) (*User, error) {
	n := tr.Node(name)
	if n == nil {
		return nil, fmt.Errorf("txn: unknown transaction %v", name)
	}
	if n.IsAccess() {
		return nil, fmt.Errorf("txn: %v is an access, not a non-access transaction", name)
	}
	u := &User{
		tr:        tr,
		name:      name,
		children:  map[ioa.TxnName]bool{},
		requested: map[ioa.TxnName]bool{},
		results:   map[ioa.TxnName]ChildResult{},
	}
	for _, c := range tr.Children(name) {
		u.children[c] = true
	}
	for _, o := range opts {
		o(u)
	}
	for _, c := range tr.Children(name) {
		if u.children[c] {
			u.order = append(u.order, c)
		}
	}
	return u, nil
}

// MustNewUser is NewUser that panics on error, for builders.
func MustNewUser(tr *tree.Tree, name ioa.TxnName, opts ...Option) *User {
	u, err := NewUser(tr, name, opts...)
	if err != nil {
		panic(err)
	}
	return u
}

// Name implements ioa.Automaton.
func (u *User) Name() string { return string(u.name) }

// HasOp implements ioa.Automaton.
func (u *User) HasOp(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpCreate, ioa.OpRequestCommit:
		return op.Txn == u.name
	case ioa.OpRequestCreate, ioa.OpCommit, ioa.OpAbort:
		return u.children[op.Txn]
	default:
		return false
	}
}

// IsOutput implements ioa.Automaton.
func (u *User) IsOutput(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpRequestCommit:
		return op.Txn == u.name
	case ioa.OpRequestCreate:
		return u.children[op.Txn]
	default:
		return false
	}
}

// allRequestedReturned reports whether every requested child has returned.
func (u *User) allRequestedReturned() bool { return len(u.results) == u.nRequested }

// commitValue computes the value this transaction will report.
func (u *User) commitValue() ioa.Value {
	if u.valueFn == nil {
		return nil
	}
	res := make(map[ioa.TxnName]ChildResult, len(u.results))
	for k, v := range u.results {
		res[k] = v
	}
	return u.valueFn(res)
}

// requestCreateEnabled reports whether REQUEST-CREATE(c) is enabled.
func (u *User) requestCreateEnabled(c ioa.TxnName) bool {
	if !u.awake || u.requestedCommit || !u.children[c] || u.requested[c] {
		return false
	}
	if u.sequential {
		for _, prev := range u.order {
			if prev == c {
				break
			}
			if !u.requested[prev] {
				return false
			}
			if _, returned := u.results[prev]; !returned {
				return false
			}
		}
	}
	return true
}

// requestCommitEnabled reports whether a REQUEST-COMMIT is enabled.
func (u *User) requestCommitEnabled() bool {
	if !u.awake || u.requestedCommit {
		return false
	}
	if u.eager {
		return true
	}
	return u.nRequested == len(u.children) && u.allRequestedReturned()
}

// Enabled implements ioa.Automaton.
func (u *User) Enabled() []ioa.Op {
	var out []ioa.Op
	for _, c := range u.order {
		if u.requestCreateEnabled(c) {
			out = append(out, ioa.RequestCreate(c))
		}
	}
	if u.requestCommitEnabled() {
		out = append(out, ioa.RequestCommit(u.name, u.commitValue()))
	}
	return out
}

// Step implements ioa.Automaton.
func (u *User) Step(op ioa.Op) error {
	switch op.Kind {
	case ioa.OpCreate:
		u.awake = true
	case ioa.OpCommit:
		u.results[op.Txn] = ChildResult{Committed: true, Value: op.Val}
	case ioa.OpAbort:
		u.results[op.Txn] = ChildResult{}
	case ioa.OpRequestCreate:
		if !u.requestCreateEnabled(op.Txn) {
			return fmt.Errorf("%w: %v by %v", ioa.ErrNotEnabled, op, u.name)
		}
		u.requested[op.Txn] = true
		u.nRequested++
	case ioa.OpRequestCommit:
		if !u.requestCommitEnabled() {
			return fmt.Errorf("%w: %v", ioa.ErrNotEnabled, op)
		}
		if want := u.commitValue(); !reflect.DeepEqual(op.Val, want) {
			return fmt.Errorf("%w: %v: value %v, state requires %v", ioa.ErrNotEnabled, op, op.Val, want)
		}
		u.requestedCommit = true
	default:
		return fmt.Errorf("user %v: unexpected op %v", u.name, op)
	}
	return nil
}

func sortedNames(set map[ioa.TxnName]bool) []ioa.TxnName {
	out := make([]ioa.TxnName, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
