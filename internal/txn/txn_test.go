package txn

import (
	"errors"
	"testing"

	"repro/internal/ioa"
	"repro/internal/tree"
)

func userTree(t *testing.T) *tree.Tree {
	t.Helper()
	tr := tree.New()
	tr.MustAddChild(tree.Root, "u", tree.KindUser)
	tr.MustAddChild("T0/u", "a", tree.KindUser)
	tr.MustAddChild("T0/u", "b", tree.KindUser)
	tr.MustAddChild("T0/u", "rec", tree.KindReconfigTM)
	return tr
}

func TestRootRequestsAllChildrenOnce(t *testing.T) {
	tr := tree.New()
	tr.MustAddChild(tree.Root, "u1", tree.KindUser)
	tr.MustAddChild(tree.Root, "u2", tree.KindUser)
	r := NewRoot(tr)
	if got := r.Enabled(); len(got) != 0 {
		t.Errorf("asleep root enabled %v", got)
	}
	if err := r.Step(ioa.Create(tree.Root)); err != nil {
		t.Fatal(err)
	}
	if got := r.Enabled(); len(got) != 2 {
		t.Errorf("root should offer both children, got %v", got)
	}
	if err := r.Step(ioa.RequestCreate("T0/u1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Step(ioa.RequestCreate("T0/u1")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("duplicate request: %v", err)
	}
	// Root never requests to commit.
	for _, op := range r.Enabled() {
		if op.Kind == ioa.OpRequestCommit {
			t.Error("root must never request to commit")
		}
	}
}

func TestUserDefaultWaitsForAllChildren(t *testing.T) {
	tr := userTree(t)
	u := MustNewUser(tr, "T0/u", Manage("T0/u/a", "T0/u/b"))
	if err := u.Step(ioa.Create("T0/u")); err != nil {
		t.Fatal(err)
	}
	if err := u.Step(ioa.RequestCreate("T0/u/a")); err != nil {
		t.Fatal(err)
	}
	if err := u.Step(ioa.RequestCreate("T0/u/b")); err != nil {
		t.Fatal(err)
	}
	// Neither child returned: no REQUEST-COMMIT offered.
	for _, op := range u.Enabled() {
		if op.Kind == ioa.OpRequestCommit {
			t.Fatal("commit offered before children returned")
		}
	}
	if err := u.Step(ioa.Commit("T0/u/a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := u.Step(ioa.Abort("T0/u/b")); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range u.Enabled() {
		if op.Kind == ioa.OpRequestCommit {
			found = true
		}
	}
	if !found {
		t.Fatal("commit not offered after all children returned")
	}
}

func TestUserManageExcludesReconfigChildren(t *testing.T) {
	tr := userTree(t)
	u := MustNewUser(tr, "T0/u", Manage("T0/u/a", "T0/u/b"))
	if u.HasOp(ioa.RequestCreate("T0/u/rec")) {
		t.Error("unmanaged child must not be in the user's operation set")
	}
	if u.HasOp(ioa.Commit("T0/u/rec", nil)) {
		t.Error("unmanaged child's return must not reach the user")
	}
	if !u.HasOp(ioa.RequestCreate("T0/u/a")) {
		t.Error("managed child missing")
	}
}

func TestUserSequentialOrder(t *testing.T) {
	tr := userTree(t)
	u := MustNewUser(tr, "T0/u", Manage("T0/u/a", "T0/u/b"), Sequential())
	if err := u.Step(ioa.Create("T0/u")); err != nil {
		t.Fatal(err)
	}
	enabled := u.Enabled()
	if len(enabled) != 1 || enabled[0].Txn != "T0/u/a" {
		t.Fatalf("sequential user should offer only the first child, got %v", enabled)
	}
	if err := u.Step(ioa.RequestCreate("T0/u/b")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("out-of-order request: %v", err)
	}
	if err := u.Step(ioa.RequestCreate("T0/u/a")); err != nil {
		t.Fatal(err)
	}
	// b must wait until a returns.
	if len(u.Enabled()) != 0 {
		t.Fatalf("b offered before a returned: %v", u.Enabled())
	}
	if err := u.Step(ioa.Commit("T0/u/a", nil)); err != nil {
		t.Fatal(err)
	}
	if got := u.Enabled(); len(got) != 1 || got[0].Txn != "T0/u/b" {
		t.Fatalf("after a returns, b should be offered: %v", got)
	}
}

func TestUserEagerCanCommitEarly(t *testing.T) {
	tr := userTree(t)
	u := MustNewUser(tr, "T0/u", Manage("T0/u/a", "T0/u/b"), Eager())
	if err := u.Step(ioa.Create("T0/u")); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range u.Enabled() {
		if op.Kind == ioa.OpRequestCommit {
			found = true
		}
	}
	if !found {
		t.Fatal("eager user should offer commit immediately after creation")
	}
}

func TestUserValueFnDeterminesCommitValue(t *testing.T) {
	tr := userTree(t)
	u := MustNewUser(tr, "T0/u",
		Manage("T0/u/a"),
		WithValue(func(res map[ioa.TxnName]ChildResult) ioa.Value {
			if r, ok := res["T0/u/a"]; ok && r.Committed {
				return r.Value.(int) * 2
			}
			return -1
		}))
	if err := u.Step(ioa.Create("T0/u")); err != nil {
		t.Fatal(err)
	}
	if err := u.Step(ioa.RequestCreate("T0/u/a")); err != nil {
		t.Fatal(err)
	}
	if err := u.Step(ioa.Commit("T0/u/a", 21)); err != nil {
		t.Fatal(err)
	}
	want := ioa.RequestCommit("T0/u", 42)
	got := u.Enabled()
	if len(got) != 1 || !got[0].Equal(want) {
		t.Fatalf("enabled = %v, want %v", got, want)
	}
	// A REQUEST-COMMIT with any other value is rejected: the automaton is
	// state-deterministic.
	if err := u.Step(ioa.RequestCommit("T0/u", 43)); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("wrong value accepted: %v", err)
	}
	if err := u.Step(want); err != nil {
		t.Fatal(err)
	}
}

func TestUserNoOutputsAfterRequestCommit(t *testing.T) {
	tr := userTree(t)
	u := MustNewUser(tr, "T0/u", Manage("T0/u/a", "T0/u/b"), Eager())
	if err := u.Step(ioa.Create("T0/u")); err != nil {
		t.Fatal(err)
	}
	if err := u.Step(ioa.RequestCommit("T0/u", nil)); err != nil {
		t.Fatal(err)
	}
	if got := u.Enabled(); len(got) != 0 {
		t.Fatalf("outputs after REQUEST-COMMIT: %v", got)
	}
	if err := u.Step(ioa.RequestCreate("T0/u/a")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("request after commit: %v", err)
	}
}

func TestNewUserErrors(t *testing.T) {
	tr := userTree(t)
	if _, err := NewUser(tr, "nope"); err == nil {
		t.Error("unknown transaction accepted")
	}
	acc := tr.MustAddChild("T0/u/a", "leaf", tree.KindAccess)
	if _, err := NewUser(tr, acc.Name()); err == nil {
		t.Error("access accepted as user transaction")
	}
}
