package cc

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/tree"
)

// TimestampScheduler is a second concurrency-control algorithm for
// Theorem 11, in the lineage of Reed's timestamp-based scheme the paper
// cites ([20]): every top-level transaction is stamped when created, and
// each object executes conflicting accesses strictly in increasing
// timestamp order. The conservative discipline — an access waits while an
// access with a smaller timestamp is outstanding at its object — never
// needs to roll back created transactions, which keeps it inside the
// model's abort semantics (only never-created transactions abort).
//
// Together with the Moss locking scheduler this exercises the paper's
// claim that the replication algorithm composes with ANY concurrency
// control that achieves copy-level serializability.
type TimestampScheduler struct {
	tr *tree.Tree

	createRequested map[ioa.TxnName]bool
	created         map[ioa.TxnName]bool
	aborted         map[ioa.TxnName]bool
	returned        map[ioa.TxnName]bool
	commitRequested map[ioa.TxnName][]ioa.Value
	committed       map[ioa.TxnName]ioa.Value

	// ts stamps top-level transactions in creation order.
	ts     map[ioa.TxnName]int
	nextTS int

	// potential maps each top-level transaction to the objects its subtree
	// could ever access — the predeclared conflict sets conservative
	// timestamp ordering schedules against.
	potential map[ioa.TxnName]map[string]bool

	// pending maps each object to its single in-flight access.
	pending map[string]ioa.TxnName
}

var _ ioa.Automaton = (*TimestampScheduler)(nil)

// NewTimestampScheduler returns a conservative timestamp-ordering
// scheduler over tr.
func NewTimestampScheduler(tr *tree.Tree) *TimestampScheduler {
	s := &TimestampScheduler{
		tr:              tr,
		createRequested: map[ioa.TxnName]bool{tree.Root: true},
		created:         map[ioa.TxnName]bool{},
		aborted:         map[ioa.TxnName]bool{},
		returned:        map[ioa.TxnName]bool{},
		commitRequested: map[ioa.TxnName][]ioa.Value{},
		committed:       map[ioa.TxnName]ioa.Value{},
		ts:              map[ioa.TxnName]int{},
		potential:       map[ioa.TxnName]map[string]bool{},
		pending:         map[string]ioa.TxnName{},
	}
	for _, top := range tr.Children(tree.Root) {
		set := map[string]bool{}
		for _, a := range tr.Accesses() {
			if tr.IsAncestor(top, a.Name()) {
				set[a.Object] = true
			}
		}
		s.potential[top] = set
	}
	return s
}

// Name implements ioa.Automaton.
func (s *TimestampScheduler) Name() string { return "timestamp-scheduler" }

// HasOp implements ioa.Automaton.
func (s *TimestampScheduler) HasOp(op ioa.Op) bool { return s.tr.Contains(op.Txn) }

// IsOutput implements ioa.Automaton.
func (s *TimestampScheduler) IsOutput(op ioa.Op) bool {
	if !s.tr.Contains(op.Txn) {
		return false
	}
	return op.Kind == ioa.OpCreate || op.Kind == ioa.OpCommit || op.Kind == ioa.OpAbort
}

// top returns t's top-level ancestor (child of the root), or "" for the
// root itself.
func (s *TimestampScheduler) top(t ioa.TxnName) ioa.TxnName {
	n := s.tr.Node(t)
	if n == nil || n.Parent() == nil {
		return ""
	}
	for n.Parent().Name() != tree.Root {
		n = n.Parent()
	}
	return n.Name()
}

// createEnabled applies conservative timestamp ordering for accesses: the
// object must be idle, and no LIVE (created, unreturned) top-level
// transaction with a smaller timestamp may have the object in its
// predeclared potential set. Same-timestamp accesses belong to one top
// transaction and are ordered by its own subtree discipline.
func (s *TimestampScheduler) createEnabled(t ioa.TxnName) bool {
	if !s.createRequested[t] || s.created[t] || s.aborted[t] {
		return false
	}
	n := s.tr.Node(t)
	if !n.IsAccess() {
		return true
	}
	if s.pending[n.Object] != "" {
		return false
	}
	myTop := s.top(t)
	myTS, stamped := s.ts[myTop]
	if !stamped {
		return false // top not created yet; cannot order the access
	}
	for other, ots := range s.ts {
		if other == myTop || ots >= myTS {
			continue
		}
		if !s.returned[other] && s.potential[other][n.Object] {
			return false
		}
	}
	return true
}

func (s *TimestampScheduler) abortEnabled(t ioa.TxnName) bool {
	return t != tree.Root && s.createRequested[t] && !s.created[t] && !s.aborted[t]
}

func (s *TimestampScheduler) childrenReturned(t ioa.TxnName) bool {
	for _, c := range s.tr.Children(t) {
		if s.createRequested[c] && !s.returned[c] {
			return false
		}
	}
	return true
}

// Enabled implements ioa.Automaton.
func (s *TimestampScheduler) Enabled() []ioa.Op {
	var out []ioa.Op
	keys := make([]ioa.TxnName, 0, len(s.createRequested))
	for t := range s.createRequested {
		keys = append(keys, t)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, t := range keys {
		if s.createEnabled(t) {
			out = append(out, ioa.Create(t))
		}
		if s.abortEnabled(t) {
			out = append(out, ioa.Abort(t))
		}
	}
	ck := make([]ioa.TxnName, 0, len(s.commitRequested))
	for t := range s.commitRequested {
		ck = append(ck, t)
	}
	sort.Slice(ck, func(i, j int) bool { return ck[i] < ck[j] })
	for _, t := range ck {
		if s.returned[t] || !s.childrenReturned(t) {
			continue
		}
		for _, v := range s.commitRequested[t] {
			out = append(out, ioa.Commit(t, v))
		}
	}
	return out
}

// Step implements ioa.Automaton.
func (s *TimestampScheduler) Step(op ioa.Op) error {
	if !s.tr.Contains(op.Txn) {
		return fmt.Errorf("timestamp-scheduler: unknown transaction %v", op.Txn)
	}
	switch op.Kind {
	case ioa.OpRequestCreate:
		s.createRequested[op.Txn] = true
		return nil
	case ioa.OpRequestCommit:
		s.commitRequested[op.Txn] = append(s.commitRequested[op.Txn], op.Val)
		if n := s.tr.Node(op.Txn); n.IsAccess() && s.pending[n.Object] == op.Txn {
			delete(s.pending, n.Object)
		}
		return nil
	case ioa.OpCreate:
		if !s.createEnabled(op.Txn) {
			return fmt.Errorf("%w: CREATE(%v)", ioa.ErrNotEnabled, op.Txn)
		}
		s.created[op.Txn] = true
		if p, ok := s.tr.Parent(op.Txn); ok && p == tree.Root {
			s.ts[op.Txn] = s.nextTS
			s.nextTS++
		}
		if n := s.tr.Node(op.Txn); n.IsAccess() {
			s.pending[n.Object] = op.Txn
		}
		return nil
	case ioa.OpAbort:
		if !s.abortEnabled(op.Txn) {
			return fmt.Errorf("%w: ABORT(%v)", ioa.ErrNotEnabled, op.Txn)
		}
		s.aborted[op.Txn] = true
		s.returned[op.Txn] = true
		return nil
	case ioa.OpCommit:
		if s.returned[op.Txn] || !s.childrenReturned(op.Txn) || !s.hasCommitRequest(op.Txn, op.Val) {
			return fmt.Errorf("%w: COMMIT(%v, %v)", ioa.ErrNotEnabled, op.Txn, op.Val)
		}
		s.committed[op.Txn] = op.Val
		s.returned[op.Txn] = true
		return nil
	default:
		return fmt.Errorf("timestamp-scheduler: unknown op kind %v", op.Kind)
	}
}

func (s *TimestampScheduler) hasCommitRequest(t ioa.TxnName, v ioa.Value) bool {
	for _, w := range s.commitRequested[t] {
		if reflect.DeepEqual(v, w) {
			return true
		}
	}
	return false
}

// BuildCTimestamp composes the scenario's primitives with the conservative
// timestamp-ordering scheduler — the second concurrent system C for
// Theorem 11.
func BuildCTimestamp(spec core.Spec) (*core.SystemB, error) {
	return core.NewReplicatedSystem(spec, func(tr *tree.Tree) ioa.Automaton {
		return NewTimestampScheduler(tr)
	})
}
