package cc

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ioa"
	"repro/internal/tree"
)

// randomLockTree builds a random 3-level tree for the property tests.
func randomLockTree(rng *rand.Rand) (*tree.Tree, []ioa.TxnName) {
	tr := tree.New()
	var leaves []ioa.TxnName
	for i := 0; i < 2+rng.Intn(3); i++ {
		u := tr.MustAddChild(tree.Root, fmt.Sprintf("u%d", i), tree.KindUser)
		for j := 0; j < 1+rng.Intn(3); j++ {
			c := tr.MustAddChild(u.Name(), fmt.Sprintf("c%d", j), tree.KindUser)
			leaves = append(leaves, c.Name())
		}
	}
	return tr, leaves
}

// TestLockManagerPropertyNoConflictingNonAncestors checks the Moss
// invariant under random grant/commit sequences: at every point, any two
// holders of conflicting locks on the same object are related by ancestry.
func TestLockManagerPropertyNoConflictingNonAncestors(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, leaves := randomLockTree(rng)
		lm := NewLockManager(tr)
		objects := []string{"x", "y"}
		live := map[ioa.TxnName]bool{}
		for _, l := range leaves {
			live[l] = true
		}
		for step := 0; step < 60; step++ {
			switch rng.Intn(3) {
			case 0, 1: // try to acquire
				txn := leaves[rng.Intn(len(leaves))]
				if !live[txn] {
					continue
				}
				obj := objects[rng.Intn(len(objects))]
				mode := Mode(1 + rng.Intn(2))
				if lm.CanGrant(obj, txn, mode) {
					lm.Grant(obj, txn, mode)
				}
			case 2: // commit a transaction upward
				txn := leaves[rng.Intn(len(leaves))]
				if !live[txn] {
					continue
				}
				lm.OnCommit(txn)
				live[txn] = false
			}
			// Invariant check over the full table.
			for _, obj := range objects {
				holders := lm.Holders(obj)
				for a, ma := range holders {
					for b, mb := range holders {
						if a == b {
							continue
						}
						if (ma == Write || mb == Write) &&
							!tr.IsAncestor(a, b) && !tr.IsAncestor(b, a) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLockInheritanceChainsToRootAndVanishes(t *testing.T) {
	tr := tree.New()
	u := tr.MustAddChild(tree.Root, "u", tree.KindUser)
	c := tr.MustAddChild(u.Name(), "c", tree.KindUser)
	g := tr.MustAddChild(c.Name(), "g", tree.KindAccess)
	lm := NewLockManager(tr)
	lm.Grant("x", g.Name(), Write)
	lm.OnCommit(g.Name())
	if lm.Holders("x")[c.Name()] != Write {
		t.Fatal("grandchild's lock must pass to child")
	}
	lm.OnCommit(c.Name())
	if lm.Holders("x")[u.Name()] != Write {
		t.Fatal("child's lock must pass to user")
	}
	lm.OnCommit(u.Name())
	if len(lm.Holders("x")) != 0 {
		t.Fatalf("top-level commit must discard locks: %v", lm.Holders("x"))
	}
}

func TestInheritanceKeepsStrongestMode(t *testing.T) {
	tr := tree.New()
	u := tr.MustAddChild(tree.Root, "u", tree.KindUser)
	a := tr.MustAddChild(u.Name(), "a", tree.KindAccess)
	b := tr.MustAddChild(u.Name(), "b", tree.KindAccess)
	lm := NewLockManager(tr)
	lm.Grant("x", a.Name(), Write)
	lm.Grant("x", b.Name(), Read) // grantable: siblings? a holds write...
	// Note: CanGrant would refuse b; Grant is unconditional by design, so
	// exercise inheritance only.
	lm.OnCommit(a.Name())
	lm.OnCommit(b.Name())
	if lm.Holders("x")[u.Name()] != Write {
		t.Fatal("parent must end with the strongest inherited mode")
	}
}

func TestConcurrentSchedulerRejectsLockedAccessCreate(t *testing.T) {
	tr := tree.New()
	u1 := tr.MustAddChild(tree.Root, "u1", tree.KindUser)
	u2 := tr.MustAddChild(tree.Root, "u2", tree.KindUser)
	a1 := tr.MustAddChild(u1.Name(), "a", tree.KindAccess)
	a1.Object = "x"
	a1.Access = tree.WriteAccess
	a2 := tr.MustAddChild(u2.Name(), "a", tree.KindAccess)
	a2.Object = "x"
	a2.Access = tree.WriteAccess

	s := NewScheduler(tr, nil)
	must := func(op ioa.Op) {
		t.Helper()
		if err := s.Step(op); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}
	must(ioa.Create(tree.Root))
	must(ioa.RequestCreate(u1.Name()))
	must(ioa.RequestCreate(u2.Name()))
	must(ioa.Create(u1.Name()))
	must(ioa.Create(u2.Name())) // no sibling rule in the concurrent scheduler
	must(ioa.RequestCreate(a1.Name()))
	must(ioa.RequestCreate(a2.Name()))
	must(ioa.Create(a1.Name()))
	// a1 holds the write lock on x (pending, too): a2 must wait.
	if err := s.Step(ioa.Create(a2.Name())); err == nil {
		t.Fatal("conflicting access created while lock held")
	}
	must(ioa.RequestCommit(a1.Name(), nil))
	// Pending cleared, but the lock is still a1's until it commits.
	if err := s.Step(ioa.Create(a2.Name())); err == nil {
		t.Fatal("lock must persist past the access's REQUEST-COMMIT")
	}
	must(ioa.Commit(a1.Name(), nil)) // lock inherited by u1
	if err := s.Step(ioa.Create(a2.Name())); err == nil {
		t.Fatal("lock must persist at the parent until top-level commit")
	}
	must(ioa.RequestCommit(u1.Name(), nil))
	must(ioa.Commit(u1.Name(), nil)) // top-level: locks discarded
	must(ioa.Create(a2.Name()))
}
