package cc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/tree"
)

func driveTS(t *testing.T, c *core.SystemB, seed int64, abortWeight float64) ioa.Schedule {
	t.Helper()
	d := ioa.NewDriver(c.Sys, seed)
	d.Bias = func(op ioa.Op) float64 {
		if op.Kind == ioa.OpAbort {
			return abortWeight
		}
		return 1
	}
	gamma, quiescent, err := d.Run(1_000_000)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if !quiescent {
		t.Fatalf("seed %d: did not quiesce", seed)
	}
	return gamma
}

// TestTimestampRunsComplete checks the scheduler is deadlock-free by
// construction: every failure-free run completes.
func TestTimestampRunsComplete(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c, err := BuildCTimestamp(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		gamma := driveTS(t, c, seed, 0)
		if !Completed(c, gamma) {
			t.Fatalf("seed %d: conservative timestamp ordering should never deadlock:\n%v", seed, gamma)
		}
	}
}

// TestTimestampOrderPerObject verifies the copy-level serialization
// property: at every object, accesses of different top-level transactions
// run in increasing timestamp (top-level creation) order.
func TestTimestampOrderPerObject(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c, err := BuildCTimestamp(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		gamma := driveTS(t, c, seed, 0.05)
		// Timestamp order = order of top-level CREATEs in gamma.
		tsOf := map[ioa.TxnName]int{}
		next := 0
		topOf := func(n ioa.TxnName) ioa.TxnName {
			for _, top := range c.Tree.Children(tree.Root) {
				if c.Tree.IsAncestor(top, n) {
					return top
				}
			}
			return ""
		}
		lastTS := map[string]int{}
		for _, op := range gamma {
			if op.Kind != ioa.OpCreate {
				continue
			}
			if p, _ := c.Tree.Parent(op.Txn); p == tree.Root {
				tsOf[op.Txn] = next
				next++
			}
			n := c.Tree.Node(op.Txn)
			if n == nil || !n.IsAccess() {
				continue
			}
			ts := tsOf[topOf(op.Txn)]
			if prev, seen := lastTS[n.Object]; seen && ts < prev {
				t.Fatalf("seed %d: object %s executed ts %d after ts %d:\n%v", seed, n.Object, ts, prev, gamma)
			}
			lastTS[n.Object] = ts
		}
	}
}

// TestTimestampSeriallyCorrectPerTransaction runs the paper's serial
// correctness definition for every user transaction of timestamp-ordered
// runs: the second CC algorithm's schedules are realizable in the serial
// system B, exactly as Theorem 11 requires of "any correct concurrency
// control".
func TestTimestampSeriallyCorrectPerTransaction(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		c, err := BuildCTimestamp(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		gamma := driveTS(t, c, seed, 0.05)
		for _, u := range c.UserTxns() {
			if _, err := SeriallyCorrectFor(c, gamma, u, 400000); err != nil {
				t.Fatalf("seed %d txn %v: %v\nγ:\n%v", seed, u, err, gamma)
			}
		}
	}
}

// TestTimestampSchedulesWellFormed checks the structural sanity of the
// second scheduler's executions.
func TestTimestampSchedulesWellFormed(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c, err := BuildCTimestamp(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		gamma := driveTS(t, c, seed, 0.1)
		if err := c.Tree.CheckScheduleWellFormed(gamma); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestTimestampInterleaves confirms the scheduler actually admits
// concurrency (otherwise the tests above would be vacuous).
func TestTimestampInterleaves(t *testing.T) {
	interleaved := false
	for seed := int64(0); seed < 20 && !interleaved; seed++ {
		c, err := BuildCTimestamp(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		gamma := driveTS(t, c, seed, 0)
		open := map[ioa.TxnName]bool{}
		for _, op := range gamma {
			p, _ := c.Tree.Parent(op.Txn)
			if p != tree.Root {
				continue
			}
			switch op.Kind {
			case ioa.OpCreate:
				if len(open) > 0 {
					interleaved = true
				}
				open[op.Txn] = true
			case ioa.OpCommit, ioa.OpAbort:
				delete(open, op.Txn)
			}
		}
	}
	if !interleaved {
		t.Fatal("timestamp scheduler never interleaved top-level transactions")
	}
}
