package cc

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/tree"
)

func concurrentSpec() core.Spec {
	dms := []string{"d1", "d2", "d3"}
	return core.Spec{
		Items: []core.ItemSpec{{
			Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms),
		}},
		Objects:            []core.ObjectSpec{{Name: "log", Initial: ""}},
		SequentialTMs:      true,
		ReadAccessesPerDM:  2,
		WriteAccessesPerDM: 2,
		Top: []core.TxnSpec{
			writeFirst(core.Sub("u1", core.WriteItem("w", "x", 10), core.ReadItem("r", "x"))),
			writeFirst(core.Sub("u2", core.WriteItem("w", "x", 20), core.ReadItem("r", "x"))),
			writeFirst(core.Sub("u3", core.ReadItem("r", "x"), core.AccessObject("l", "log", tree.WriteAccess, "u3"))),
		},
	}
}

// writeFirst makes a user transaction sequential, the deadlock-averse shape
// for lock-based concurrency control: its write locks are taken before any
// read locks it might otherwise need to upgrade.
func writeFirst(t core.TxnSpec) core.TxnSpec {
	t.Sequential = true
	return t
}

func driveC(t *testing.T, c *core.SystemB, seed int64, abortWeight float64) ioa.Schedule {
	t.Helper()
	d := ioa.NewDriver(c.Sys, seed)
	d.Bias = func(op ioa.Op) float64 {
		if op.Kind == ioa.OpAbort {
			return abortWeight
		}
		return 1
	}
	sched, _, err := d.Run(200000)
	if err != nil {
		t.Fatalf("seed %d: %v\nschedule:\n%v", seed, err, sched)
	}
	return sched
}

func TestConcurrentRunsInterleave(t *testing.T) {
	// At least one run must interleave sibling subtrees — i.e. not already
	// be serial — otherwise the concurrent scheduler is vacuous.
	interleaved := false
	for seed := int64(0); seed < 20 && !interleaved; seed++ {
		c, err := BuildC(concurrentSpec())
		if err != nil {
			t.Fatal(err)
		}
		sched := driveC(t, c, seed, 0)
		// Detect interleaving: a CREATE of a transaction in one top-level
		// subtree between CREATE and return of a transaction in another.
		open := map[ioa.TxnName]bool{}
		topOf := func(n ioa.TxnName) ioa.TxnName {
			for _, top := range c.Tree.Children(tree.Root) {
				if c.Tree.IsAncestor(top, n) {
					return top
				}
			}
			return ""
		}
		for _, op := range sched {
			switch op.Kind {
			case ioa.OpCreate:
				if top := topOf(op.Txn); top != "" && top != op.Txn {
					for other := range open {
						if other != top {
							interleaved = true
						}
					}
					open[top] = true
				}
			case ioa.OpCommit, ioa.OpAbort:
				if top := topOf(op.Txn); top == op.Txn {
					delete(open, top)
				}
			}
		}
	}
	if !interleaved {
		t.Fatal("no concurrent run interleaved top-level subtrees in 20 seeds")
	}
}

func TestTheorem11FixedScenario(t *testing.T) {
	completed := 0
	for seed := int64(0); seed < 40; seed++ {
		c, err := BuildC(concurrentSpec())
		if err != nil {
			t.Fatal(err)
		}
		gamma := driveC(t, c, seed, 0.02)
		if !Completed(c, gamma) {
			continue // deadlocked or stuck run; serial correctness per-txn still holds but we check complete runs
		}
		completed++
		if err := CheckTheorem11(c, gamma); err != nil {
			t.Fatalf("seed %d: %v\nγ:\n%v", seed, err, gamma)
		}
	}
	if completed < 25 {
		t.Fatalf("only %d/40 concurrent runs completed; expected most to", completed)
	}
}

func TestTheorem11RandomScenarios(t *testing.T) {
	params := core.DefaultRandParams()
	params.RetryAccesses = true
	params.DeadlockAverse = true
	completed := 0
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := core.RandomSpec(rng, params)
		spec.SequentialTMs = true
		c, err := BuildC(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gamma := driveC(t, c, seed+2000, 0.02)
		if !Completed(c, gamma) {
			continue
		}
		completed++
		if err := CheckTheorem11(c, gamma); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if completed < 20 {
		t.Fatalf("only %d/40 random concurrent runs completed", completed)
	}
}

func TestLockManagerMossRules(t *testing.T) {
	tr := tree.New()
	u1 := tr.MustAddChild(tree.Root, "u1", tree.KindUser)
	u2 := tr.MustAddChild(tree.Root, "u2", tree.KindUser)
	a1 := tr.MustAddChild(u1.Name(), "a", tree.KindAccess)
	a2 := tr.MustAddChild(u2.Name(), "a", tree.KindAccess)
	lm := NewLockManager(tr)

	// Read locks are compatible across unrelated transactions.
	if !lm.CanGrant("x", a1.Name(), Read) {
		t.Fatal("first read lock should be grantable")
	}
	lm.Grant("x", a1.Name(), Read)
	if !lm.CanGrant("x", a2.Name(), Read) {
		t.Fatal("concurrent read locks should be grantable")
	}
	// A write conflicts with an unrelated read holder.
	if lm.CanGrant("x", a2.Name(), Write) {
		t.Fatal("write lock must not be granted over an unrelated read holder")
	}
	// After a1 commits, its lock passes to u1; u2's descendants still
	// conflict, but u1's own new children do not.
	lm.OnCommit(a1.Name())
	if lm.CanGrant("x", a2.Name(), Write) {
		t.Fatal("write lock must not be granted over u1's inherited read lock")
	}
	b1 := tr.MustAddChild(u1.Name(), "b", tree.KindAccess)
	if !lm.CanGrant("x", b1.Name(), Write) {
		t.Fatal("descendant of the holder must be able to lock")
	}
	// When u1 commits at top level, the lock is discarded.
	lm.OnCommit(u1.Name())
	if !lm.CanGrant("x", a2.Name(), Write) {
		t.Fatal("lock should be free after top-level commit")
	}
}

func TestSerializeRejectsNonSerializableOrder(t *testing.T) {
	// Hand-build a γ whose per-transaction sequences cannot come from any
	// serial schedule: a user claims to have observed a COMMIT for a child
	// that never requested to commit.
	spec := core.Spec{
		Items: []core.ItemSpec{{
			Name: "x", Initial: 0, DMs: []string{"d1"},
			Config: quorum.ReadOneWriteAll([]string{"d1"}),
		}},
		Top: []core.TxnSpec{core.Sub("u", core.ReadItem("r", "x"))},
	}
	c, err := BuildC(spec)
	if err != nil {
		t.Fatal(err)
	}
	gamma := ioa.Schedule{
		ioa.Create("T0"),
		ioa.RequestCreate("T0/u"),
		ioa.Create("T0/u"),
		ioa.RequestCreate("T0/u/r"),
		ioa.Commit("T0/u/r", 0), // no CREATE, no REQUEST-COMMIT: bogus
	}
	if _, err := Serialize(c, gamma); err == nil {
		t.Fatal("Serialize accepted a bogus schedule")
	}
}

func TestConcurrentSchedulesAreWellFormed(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		c, err := BuildC(concurrentSpec())
		if err != nil {
			t.Fatal(err)
		}
		gamma := driveC(t, c, seed, 0.02)
		if err := c.Tree.CheckScheduleWellFormed(gamma); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
