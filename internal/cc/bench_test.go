package cc

import (
	"fmt"
	"testing"

	"repro/internal/ioa"
	"repro/internal/tree"
)

func BenchmarkLockManagerGrantCommit(b *testing.B) {
	tr := tree.New()
	var leaves []ioa.TxnName
	for i := 0; i < 8; i++ {
		u := tr.MustAddChild(tree.Root, fmt.Sprintf("u%d", i), tree.KindUser)
		c := tr.MustAddChild(u.Name(), "c", tree.KindAccess)
		leaves = append(leaves, c.Name())
	}
	lm := NewLockManager(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := leaves[i%len(leaves)]
		if lm.CanGrant("x", t, Read) {
			lm.Grant("x", t, Read)
			lm.OnCommit(t)
			if p, ok := tr.Parent(t); ok {
				lm.OnCommit(p)
			}
		}
	}
}

func BenchmarkSerializeConcurrentRun(b *testing.B) {
	spec := concurrentSpec()
	for i := 0; i < b.N; i++ {
		c, err := BuildC(spec)
		if err != nil {
			b.Fatal(err)
		}
		d := ioa.NewDriver(c.Sys, int64(i))
		d.Bias = func(op ioa.Op) float64 {
			if op.Kind == ioa.OpAbort {
				return 0
			}
			return 1
		}
		gamma, _, err := d.Run(1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if !Completed(c, gamma) {
			continue
		}
		if _, err := Serialize(c, gamma); err != nil {
			b.Fatal(err)
		}
	}
}
