package cc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/quorum"
)

// smallSpec keeps the per-transaction realization search tractable: one
// item on two DMs, two users with one logical op each.
func smallSpec() core.Spec {
	dms := []string{"d1", "d2"}
	spec := core.Spec{
		Items: []core.ItemSpec{{
			Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms),
		}},
		Top: []core.TxnSpec{
			core.Sub("u1", core.WriteItem("w", "x", 1)),
			core.Sub("u2", core.ReadItem("r", "x")),
		},
		SequentialTMs: true,
	}
	for i := range spec.Top {
		spec.Top[i].Sequential = true
	}
	return spec
}

// TestSeriallyCorrectPerTransactionOnCompleteRuns cross-validates the
// whole-schedule serializer: for complete concurrent runs, every user
// transaction individually satisfies the paper's serial correctness
// definition via bounded search for a realizing serial schedule.
func TestSeriallyCorrectPerTransactionOnCompleteRuns(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 12 && checked < 5; seed++ {
		c, err := BuildC(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		d := ioa.NewDriver(c.Sys, seed)
		d.Bias = func(op ioa.Op) float64 {
			if op.Kind == ioa.OpAbort {
				return 0
			}
			return 1
		}
		gamma, _, err := d.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !Completed(c, gamma) {
			continue
		}
		checked++
		for _, u := range c.UserTxns() {
			real, err := SeriallyCorrectFor(c, gamma, u, 400000)
			if err != nil {
				t.Fatalf("seed %d txn %v: %v\nγ:\n%v", seed, u, err, gamma)
			}
			// The found schedule really realizes the projection.
			if !real.OpsFor(u, c.Tree.Parent).Equal(gamma.OpsFor(u, c.Tree.Parent)) {
				t.Fatalf("seed %d: realization does not project to γ|%v", seed, u)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no complete runs to check")
	}
}

// TestSeriallyCorrectOnIncompleteRuns exercises the case the
// whole-schedule serializer cannot handle: runs where some transactions
// never finished (lock waits aborted, quorums starved). Serial correctness
// is per transaction, so each user's partial view must still be realizable
// by some serial schedule.
func TestSeriallyCorrectOnIncompleteRuns(t *testing.T) {
	found := 0
	for seed := int64(0); seed < 40 && found < 3; seed++ {
		c, err := BuildC(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		d := ioa.NewDriver(c.Sys, seed)
		d.Bias = func(op ioa.Op) float64 {
			if op.Kind == ioa.OpAbort {
				return 0.6 // heavy aborts to starve TMs
			}
			return 1
		}
		gamma, _, err := d.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if Completed(c, gamma) {
			continue
		}
		found++
		for _, u := range c.UserTxns() {
			if _, err := SeriallyCorrectFor(c, gamma, u, 400000); err != nil {
				t.Fatalf("seed %d txn %v: %v\nγ:\n%v", seed, u, err, gamma)
			}
		}
	}
	if found == 0 {
		t.Skip("no incomplete runs encountered in 40 seeds")
	}
}

// TestSeriallyCorrectRejectsImpossibleProjection sanity-checks the search:
// a fabricated projection no serial schedule can produce is refused.
func TestSeriallyCorrectRejectsImpossibleProjection(t *testing.T) {
	c, err := BuildC(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	// γ in which u1 observes a COMMIT for its write-TM child that never
	// requested to commit (no subtree ops at all).
	gamma := ioa.Schedule{
		ioa.Create("T0"),
		ioa.RequestCreate("T0/u1"),
		ioa.Create("T0/u1"),
		ioa.RequestCreate("T0/u1/w"),
		ioa.Commit("T0/u1/w", "bogus-value"),
	}
	if _, err := SeriallyCorrectFor(c, gamma, "T0/u1", 50000); err == nil {
		t.Fatal("impossible projection accepted")
	}
}
