// Package cc implements nested-transaction concurrency control at the copy
// level and the machinery for validating Theorem 11: Moss-style read/write
// locking with lock inheritance (the algorithm of [19], one of the two the
// paper names as combinable with the replication algorithm), a concurrent
// scheduler that replaces the serial scheduler while keeping every other
// automaton unchanged, and a checker that extracts a serial schedule of
// system B from a concurrent schedule of system C and verifies that every
// transaction is serially correct.
package cc

import (
	"repro/internal/ioa"
	"repro/internal/tree"
)

// Mode is a lock mode.
type Mode int

// Lock modes. Two locks conflict unless both are read locks; a conflicting
// lock may still be granted when every conflicting holder is an ancestor of
// the requester (Moss's rule).
const (
	Read Mode = iota + 1
	Write
)

// String returns "read" or "write".
func (m Mode) String() string {
	if m == Read {
		return "read"
	}
	return "write"
}

// LockManager implements Moss read/write locking for nested transactions:
//
//   - a transaction may acquire a read lock on an object if every holder of
//     a write lock on it is an ancestor;
//   - a transaction may acquire a write lock if every holder of any lock is
//     an ancestor;
//   - when a transaction commits, its locks are inherited by its parent;
//     locks reaching the root are discarded;
//   - an aborted transaction was never created (the model's abort
//     semantics), so it never holds locks.
type LockManager struct {
	tr      *tree.Tree
	holders map[string]map[ioa.TxnName]Mode
}

// NewLockManager returns an empty lock table over the given tree.
func NewLockManager(tr *tree.Tree) *LockManager {
	return &LockManager{tr: tr, holders: map[string]map[ioa.TxnName]Mode{}}
}

// CanGrant reports whether t may acquire a lock of the given mode on obj.
func (l *LockManager) CanGrant(obj string, t ioa.TxnName, m Mode) bool {
	for holder, hm := range l.holders[obj] {
		if holder == t {
			continue
		}
		if (m == Write || hm == Write) && !l.tr.IsAncestor(holder, t) {
			return false
		}
	}
	return true
}

// Grant records that t holds a lock of the given mode on obj, upgrading an
// existing read lock to write if needed.
func (l *LockManager) Grant(obj string, t ioa.TxnName, m Mode) {
	hs := l.holders[obj]
	if hs == nil {
		hs = map[ioa.TxnName]Mode{}
		l.holders[obj] = hs
	}
	if hs[t] < m {
		hs[t] = m
	}
}

// OnCommit moves every lock held by t to t's parent; locks inherited by the
// root are discarded.
func (l *LockManager) OnCommit(t ioa.TxnName) {
	parent, ok := l.tr.Parent(t)
	for obj, hs := range l.holders {
		m, held := hs[t]
		if !held {
			continue
		}
		delete(hs, t)
		if ok && parent != tree.Root {
			if hs[parent] < m {
				hs[parent] = m
			}
		}
		if len(hs) == 0 {
			delete(l.holders, obj)
		}
	}
}

// Holders returns a snapshot of the lock table for obj.
func (l *LockManager) Holders(obj string) map[ioa.TxnName]Mode {
	out := map[ioa.TxnName]Mode{}
	for t, m := range l.holders[obj] {
		out[t] = m
	}
	return out
}
