package cc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/tree"
)

// BuildC composes the scenario's primitives — the very automata of system B
// — with a concurrent scheduler, yielding a concurrent replicated system C
// of the same system type, as in the statement of Theorem 11.
func BuildC(spec core.Spec) (*core.SystemB, error) {
	return core.NewReplicatedSystem(spec, func(tr *tree.Tree) ioa.Automaton {
		return NewScheduler(tr, WriteTMMode(tr))
	})
}

// WriteTMMode returns the lock-mode policy used by BuildC: every access
// invoked by a write-TM takes a write lock (including the version-number
// discovery reads), the update-lock discipline that prevents read→write
// upgrade deadlocks between concurrent writers of one item. All other
// accesses lock according to their kind.
func WriteTMMode(tr *tree.Tree) ModeFn {
	return func(n *tree.Node) Mode {
		if p := n.Parent(); p != nil && p.Kind() == tree.KindWriteTM {
			return Write
		}
		return DefaultMode(n)
	}
}

// cursor walks a fixed subsequence of operations.
type cursor struct {
	ops ioa.Schedule
	pos int
}

func (c *cursor) next() (ioa.Op, bool) {
	if c.pos >= len(c.ops) {
		return ioa.Op{}, false
	}
	return c.ops[c.pos], true
}

func (c *cursor) done() bool { return c.pos >= len(c.ops) }

// Serialize extracts from gamma — a schedule of the concurrent system c —
// a serial schedule u of system B such that u|A = gamma|A for every
// transaction automaton A (root, user transactions, and TMs) and every
// operation mentioning any given transaction occurs in the same order and
// with the same values. Its existence is exactly the serial correctness of
// gamma with respect to B for every transaction, the hypothesis Theorem 11
// discharges for locking schedulers.
//
// The construction replays a fresh serial system B, choosing at each step
// an enabled operation that is "next" for every constrained cursor, and
// preferring the operation whose transaction returned earliest in gamma —
// i.e. serializing sibling subtrees in commit order, the serialization
// order Moss locking guarantees. It fails if and only if no such greedy
// extension exists.
func Serialize(c *core.SystemB, gamma ioa.Schedule) (ioa.Schedule, error) {
	b, err := core.BuildB(c.Spec)
	if err != nil {
		return nil, fmt.Errorf("serialize: build serial system: %w", err)
	}

	// Per-transaction-automaton cursors pin each automaton's projection;
	// per-name cursors pin the order and values of all operations
	// mentioning each transaction (this covers accesses, whose invocations
	// belong to objects rather than transaction automata).
	autoCursors := map[ioa.Automaton]*cursor{}
	for _, a := range b.Sys.Components() {
		if b.Tree.Contains(ioa.TxnName(a.Name())) {
			autoCursors[a] = &cursor{ops: gamma.Project(a)}
		}
	}
	nameCursors := map[ioa.TxnName]*cursor{}
	for _, name := range b.Tree.Names() {
		n := name
		seq := gamma.Filter(func(op ioa.Op) bool { return op.Txn == n })
		if len(seq) > 0 {
			nameCursors[name] = &cursor{ops: seq}
		}
	}

	// returnPos orders subtrees by completion time in gamma; createdInGamma
	// marks transactions that actually ran.
	returnPos := map[ioa.TxnName]int{}
	createdInGamma := map[ioa.TxnName]bool{}
	gammaPos := map[ioa.TxnName]map[ioa.OpKind]int{}
	for i, op := range gamma {
		if op.IsReturn() {
			returnPos[op.Txn] = i
		}
		if op.Kind == ioa.OpCreate {
			createdInGamma[op.Txn] = true
		}
		if gammaPos[op.Txn] == nil {
			gammaPos[op.Txn] = map[ioa.OpKind]int{}
		}
		if _, seen := gammaPos[op.Txn][op.Kind]; !seen {
			gammaPos[op.Txn][op.Kind] = i
		}
	}
	pos := func(t ioa.TxnName, k ioa.OpKind) int {
		p, ok := gammaPos[t][k]
		if !ok {
			return len(gamma)
		}
		return p
	}
	retPos := func(t ioa.TxnName) int {
		if p, ok := returnPos[t]; ok {
			return p
		}
		return len(gamma)
	}
	priority := func(op ioa.Op) (int, int) { return retPos(op.Txn), pos(op.Txn, op.Kind) }

	// returnedInU tracks the returns performed in the serial schedule so
	// far. A serial scheduler runs sibling subtrees one at a time from
	// CREATE through return — and an ABORT, which also requires quiet
	// siblings, is the entire serial run of a never-created sibling — so
	// the only serialization consistent with the parents' observed return
	// orders runs siblings in gamma's return order: CREATE(T) is admissible
	// only when every sibling that took part in gamma (was created or
	// aborted) and returned there before T has already returned here.
	returnedInU := map[ioa.TxnName]bool{}
	createOrderOK := func(t ioa.TxnName) bool {
		key := [2]int{retPos(t), pos(t, ioa.OpCreate)}
		for _, s := range b.Tree.Siblings(t) {
			if returnedInU[s] {
				continue
			}
			if !createdInGamma[s] && retPos(s) == len(gamma) {
				continue // never took part in gamma
			}
			sk := [2]int{retPos(s), pos(s, ioa.OpCreate)}
			if sk[0] < key[0] || (sk[0] == key[0] && sk[1] < key[1]) {
				return false
			}
		}
		return true
	}

	allowed := func(op ioa.Op) bool {
		if op.Kind == ioa.OpCreate && !createOrderOK(op.Txn) {
			return false
		}
		nc, ok := nameCursors[op.Txn]
		if !ok {
			return false // gamma never mentions this transaction
		}
		if next, ok := nc.next(); !ok || !next.Equal(op) {
			return false
		}
		for a, cur := range autoCursors {
			if !a.HasOp(op) {
				continue
			}
			if next, ok := cur.next(); !ok || !next.Equal(op) {
				return false
			}
		}
		return true
	}

	for {
		var best ioa.Op
		bestSet := false
		var bestR, bestG int
		for _, op := range b.Sys.Enabled() {
			if !allowed(op) {
				continue
			}
			r, g := priority(op)
			if !bestSet || r < bestR || (r == bestR && g < bestG) {
				best, bestSet, bestR, bestG = op, true, r, g
			}
		}
		if !bestSet {
			break
		}
		if err := b.Sys.Step(best); err != nil {
			return b.Sys.Schedule(), fmt.Errorf("serialize: enabled+allowed op rejected: %w", err)
		}
		if best.IsReturn() {
			returnedInU[best.Txn] = true
		}
		nameCursors[best.Txn].pos++
		for a, cur := range autoCursors {
			if a.HasOp(best) {
				cur.pos++
			}
		}
	}

	var pendingNames []string
	for name, cur := range nameCursors {
		if !cur.done() {
			next, _ := cur.next()
			pendingNames = append(pendingNames, fmt.Sprintf("%v waits for %v (%d/%d)", name, next, cur.pos, len(cur.ops)))
		}
	}
	if len(pendingNames) > 0 {
		sort.Strings(pendingNames)
		var enabled []string
		for _, op := range b.Sys.Enabled() {
			enabled = append(enabled, op.String())
		}
		return b.Sys.Schedule(), fmt.Errorf("serialize: stuck with %d pending transactions:\n  %s\nenabled in serial B:\n  %s",
			len(pendingNames), strings.Join(pendingNames, "\n  "), strings.Join(enabled, "\n  "))
	}
	return b.Sys.Schedule(), nil
}

// CheckTheorem11 validates the full chain of Theorem 11 on a schedule gamma
// of the concurrent system c: it extracts a serial schedule u of system B
// with identical per-transaction behavior (serial correctness at the copy
// level), then applies the Theorem 10 checker to u, establishing that gamma
// is serially correct with respect to the non-replicated system A for every
// user transaction.
func CheckTheorem11(c *core.SystemB, gamma ioa.Schedule) error {
	u, err := Serialize(c, gamma)
	if err != nil {
		return err
	}
	// Reuse the serial system's own projection machinery for Theorem 10.
	b, err := core.BuildB(c.Spec)
	if err != nil {
		return err
	}
	if i, err := b.Sys.Replay(u); err != nil {
		return fmt.Errorf("theorem11: u is not a schedule of B at %d: %w", i, err)
	}
	if err := b.CheckTheorem10(u); err != nil {
		return fmt.Errorf("theorem11: %w", err)
	}
	// End-to-end: the user transactions' behaviors in gamma match their
	// behaviors in the serial schedule u (and hence in system A).
	for _, usr := range c.UserTxns() {
		if !gamma.OpsFor(usr, c.Tree.Parent).Equal(u.OpsFor(usr, b.Tree.Parent)) {
			return fmt.Errorf("theorem11: user %v behaves differently in γ and u", usr)
		}
	}
	return nil
}

// Completed reports whether every top-level transaction returned in gamma.
func Completed(c *core.SystemB, gamma ioa.Schedule) bool {
	returned := map[ioa.TxnName]bool{}
	for _, op := range gamma {
		if op.IsReturn() {
			returned[op.Txn] = true
		}
	}
	for _, top := range c.Tree.Children(tree.Root) {
		if !returned[top] {
			return false
		}
	}
	return true
}
