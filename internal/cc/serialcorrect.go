package cc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ioa"
)

// SeriallyCorrectFor checks the paper's serial correctness definition for
// one transaction: γ|T = u|T for SOME schedule u of the serial system B —
// each transaction individually, which is exactly the property Theorem 11's
// hypothesis demands and the only form applicable to incomplete (e.g.
// lock-wait-aborted) concurrent runs, where no single serial schedule can
// realize every transaction's projection at once.
//
// The search is bounded by budget states; a nil error means a realizing
// serial schedule was found (and is returned).
func SeriallyCorrectFor(c *core.SystemB, gamma ioa.Schedule, txn ioa.TxnName, budget int) (ioa.Schedule, error) {
	if !c.Tree.Contains(txn) {
		return nil, fmt.Errorf("cc: unknown transaction %v", txn)
	}
	target := gamma.OpsFor(txn, c.Tree.Parent)
	build := func() (*ioa.System, error) {
		b, err := core.BuildB(c.Spec)
		if err != nil {
			return nil, err
		}
		return b.Sys, nil
	}
	// Build a throwaway B to obtain the projection function's tree (same
	// shape as every instance built above).
	b, err := core.BuildB(c.Spec)
	if err != nil {
		return nil, err
	}
	project := func(s ioa.Schedule) ioa.Schedule { return s.OpsFor(txn, b.Tree.Parent) }
	u, err := ioa.FindRealization(build, project, target, budget)
	if err != nil {
		return nil, fmt.Errorf("cc: transaction %v is not serially correct within budget: %w", txn, err)
	}
	return u, nil
}
