package cc

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/ioa"
	"repro/internal/tree"
)

// ModeFn decides the lock mode an access must acquire. The default maps
// read accesses to read locks and write accesses to write locks; the
// replicated-system builder instead takes write locks for every access of a
// write-TM, the standard update-lock discipline that avoids read→write
// upgrade deadlocks between concurrent writers of the same item.
type ModeFn func(*tree.Node) Mode

// DefaultMode maps the access kind to the corresponding lock mode.
func DefaultMode(n *tree.Node) Mode {
	if n.Access == tree.ReadAccess {
		return Read
	}
	return Write
}

// Scheduler is a concurrent scheduler: it has exactly the serial
// scheduler's operations, but drops the run-siblings-one-at-a-time
// precondition on CREATE and instead serializes data access through Moss
// locks (and a one-pending-access-per-object rule, which keeps the basic
// objects' schedules well-formed). Schedules of the resulting system C are
// serially correct with respect to system B for all non-orphan
// transactions, which is the hypothesis of Theorem 11; the checker in this
// package verifies that claim execution by execution.
type Scheduler struct {
	tr    *tree.Tree
	locks *LockManager
	mode  ModeFn

	createRequested map[ioa.TxnName]bool
	created         map[ioa.TxnName]bool
	aborted         map[ioa.TxnName]bool
	returned        map[ioa.TxnName]bool
	commitRequested map[ioa.TxnName][]ioa.Value
	committed       map[ioa.TxnName]ioa.Value

	// pending maps each object to its currently active access, if any.
	pending map[string]ioa.TxnName
}

var _ ioa.Automaton = (*Scheduler)(nil)

// NewScheduler returns a concurrent scheduler over tr using the given lock
// mode policy (nil for DefaultMode).
func NewScheduler(tr *tree.Tree, mode ModeFn) *Scheduler {
	if mode == nil {
		mode = DefaultMode
	}
	return &Scheduler{
		tr:              tr,
		locks:           NewLockManager(tr),
		mode:            mode,
		createRequested: map[ioa.TxnName]bool{tree.Root: true},
		created:         map[ioa.TxnName]bool{},
		aborted:         map[ioa.TxnName]bool{},
		returned:        map[ioa.TxnName]bool{},
		commitRequested: map[ioa.TxnName][]ioa.Value{},
		committed:       map[ioa.TxnName]ioa.Value{},
		pending:         map[string]ioa.TxnName{},
	}
}

// Name implements ioa.Automaton.
func (s *Scheduler) Name() string { return "concurrent-scheduler" }

// HasOp implements ioa.Automaton.
func (s *Scheduler) HasOp(op ioa.Op) bool { return s.tr.Contains(op.Txn) }

// IsOutput implements ioa.Automaton.
func (s *Scheduler) IsOutput(op ioa.Op) bool {
	if !s.tr.Contains(op.Txn) {
		return false
	}
	return op.Kind == ioa.OpCreate || op.Kind == ioa.OpCommit || op.Kind == ioa.OpAbort
}

// createEnabled: requested, not yet created or aborted; accesses must
// additionally find their object idle and their lock grantable.
func (s *Scheduler) createEnabled(t ioa.TxnName) bool {
	if !s.createRequested[t] || s.created[t] || s.aborted[t] {
		return false
	}
	n := s.tr.Node(t)
	if n.IsAccess() {
		if s.pending[n.Object] != "" {
			return false
		}
		if !s.locks.CanGrant(n.Object, t, s.mode(n)) {
			return false
		}
	}
	return true
}

// abortEnabled: aborts are allowed for requested, never-created
// transactions, exactly as in the serial scheduler.
func (s *Scheduler) abortEnabled(t ioa.TxnName) bool {
	return t != tree.Root && s.createRequested[t] && !s.created[t] && !s.aborted[t]
}

func (s *Scheduler) childrenReturned(t ioa.TxnName) bool {
	for _, c := range s.tr.Children(t) {
		if s.createRequested[c] && !s.returned[c] {
			return false
		}
	}
	return true
}

// Enabled implements ioa.Automaton.
func (s *Scheduler) Enabled() []ioa.Op {
	var out []ioa.Op
	keys := make([]ioa.TxnName, 0, len(s.createRequested))
	for t := range s.createRequested {
		keys = append(keys, t)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, t := range keys {
		if s.createEnabled(t) {
			out = append(out, ioa.Create(t))
		}
		if s.abortEnabled(t) {
			out = append(out, ioa.Abort(t))
		}
	}
	ck := make([]ioa.TxnName, 0, len(s.commitRequested))
	for t := range s.commitRequested {
		ck = append(ck, t)
	}
	sort.Slice(ck, func(i, j int) bool { return ck[i] < ck[j] })
	for _, t := range ck {
		if s.returned[t] || !s.childrenReturned(t) {
			continue
		}
		for _, v := range s.commitRequested[t] {
			out = append(out, ioa.Commit(t, v))
		}
	}
	return out
}

// Step implements ioa.Automaton.
func (s *Scheduler) Step(op ioa.Op) error {
	if !s.tr.Contains(op.Txn) {
		return fmt.Errorf("concurrent-scheduler: unknown transaction %v", op.Txn)
	}
	switch op.Kind {
	case ioa.OpRequestCreate:
		s.createRequested[op.Txn] = true
		return nil
	case ioa.OpRequestCommit:
		s.commitRequested[op.Txn] = append(s.commitRequested[op.Txn], op.Val)
		if n := s.tr.Node(op.Txn); n.IsAccess() && s.pending[n.Object] == op.Txn {
			delete(s.pending, n.Object)
		}
		return nil
	case ioa.OpCreate:
		if !s.createEnabled(op.Txn) {
			return fmt.Errorf("%w: CREATE(%v)", ioa.ErrNotEnabled, op.Txn)
		}
		s.created[op.Txn] = true
		if n := s.tr.Node(op.Txn); n.IsAccess() {
			s.locks.Grant(n.Object, op.Txn, s.mode(n))
			s.pending[n.Object] = op.Txn
		}
		return nil
	case ioa.OpAbort:
		if !s.abortEnabled(op.Txn) {
			return fmt.Errorf("%w: ABORT(%v)", ioa.ErrNotEnabled, op.Txn)
		}
		s.aborted[op.Txn] = true
		s.returned[op.Txn] = true
		return nil
	case ioa.OpCommit:
		if s.returned[op.Txn] || !s.childrenReturned(op.Txn) || !s.hasCommitRequest(op.Txn, op.Val) {
			return fmt.Errorf("%w: COMMIT(%v, %v)", ioa.ErrNotEnabled, op.Txn, op.Val)
		}
		s.committed[op.Txn] = op.Val
		s.returned[op.Txn] = true
		s.locks.OnCommit(op.Txn)
		return nil
	default:
		return fmt.Errorf("concurrent-scheduler: unknown op kind %v", op.Kind)
	}
}

func (s *Scheduler) hasCommitRequest(t ioa.TxnName, v ioa.Value) bool {
	for _, w := range s.commitRequested[t] {
		if reflect.DeepEqual(v, w) {
			return true
		}
	}
	return false
}

// Returned reports whether t committed or aborted.
func (s *Scheduler) Returned(t ioa.TxnName) bool { return s.returned[t] }
