// Package ioa implements the Lynch-Merritt / Lynch-Tuttle input-output
// automaton model specialized to nested transaction systems, as used by
// Goldman & Lynch, "Quorum Consensus in Nested Transaction Systems"
// (PODC 1987), Section 2.
//
// Components of a system are modeled as (possibly nondeterministic) automata
// whose state transitions are labeled with operation names. Communication
// between automata is described by identifying their operations: when the
// composed system performs an operation, every component that has that
// operation performs it simultaneously, and the rest stay put. Exactly one
// component has each operation as an output; the others have it as an input.
//
// Only finite behavior is treated, matching the paper ("We only prove
// properties of finite behavior, so a simple special case of the general
// model is sufficient").
package ioa

import (
	"fmt"
	"reflect"
)

// TxnName names a transaction in the transaction tree. Names are
// hierarchical, "/"-separated paths rooted at "T0" (e.g. "T0/u1/r1"), but
// ioa treats them as opaque identifiers; the tree structure lives in
// internal/tree.
type TxnName string

// Value is an element of the value set V that transactions may return.
// Concrete values must be usable with reflect.DeepEqual; the model layer
// uses ints, strings, and small structs.
type Value any

// OpKind enumerates the five operation kinds of a nested transaction system
// (paper Section 2.2).
type OpKind int

// Operation kinds. CREATE(T) wakes transaction T up; REQUEST-CREATE(T') is
// T's parent asking for T' to be created; REQUEST-COMMIT(T,v) is T
// announcing it finished with value v; COMMIT(T,v) and ABORT(T) are the
// return operations for T, reported to T's parent by the scheduler.
const (
	OpCreate OpKind = iota + 1
	OpRequestCreate
	OpRequestCommit
	OpCommit
	OpAbort
)

// String returns the paper's spelling of the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "CREATE"
	case OpRequestCreate:
		return "REQUEST-CREATE"
	case OpRequestCommit:
		return "REQUEST-COMMIT"
	case OpCommit:
		return "COMMIT"
	case OpAbort:
		return "ABORT"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is a single operation of a nested transaction system. Txn is the
// transaction the operation concerns: for REQUEST-CREATE(T') and the return
// operations COMMIT(T',v)/ABORT(T'), Txn is the child T', not the parent.
// Val carries the value for REQUEST-COMMIT and COMMIT and is nil otherwise.
type Op struct {
	Kind OpKind
	Txn  TxnName
	Val  Value
}

// Create returns the operation CREATE(t).
func Create(t TxnName) Op { return Op{Kind: OpCreate, Txn: t} }

// RequestCreate returns the operation REQUEST-CREATE(t).
func RequestCreate(t TxnName) Op { return Op{Kind: OpRequestCreate, Txn: t} }

// RequestCommit returns the operation REQUEST-COMMIT(t, v).
func RequestCommit(t TxnName, v Value) Op { return Op{Kind: OpRequestCommit, Txn: t, Val: v} }

// Commit returns the operation COMMIT(t, v).
func Commit(t TxnName, v Value) Op { return Op{Kind: OpCommit, Txn: t, Val: v} }

// Abort returns the operation ABORT(t).
func Abort(t TxnName) Op { return Op{Kind: OpAbort, Txn: t} }

// IsReturn reports whether the op is a return operation (COMMIT or ABORT)
// for op.Txn.
func (o Op) IsReturn() bool { return o.Kind == OpCommit || o.Kind == OpAbort }

// Equal reports whether two operations are identical, comparing values with
// reflect.DeepEqual (values may contain maps, e.g. quorum configurations).
func (o Op) Equal(p Op) bool {
	return o.Kind == p.Kind && o.Txn == p.Txn && reflect.DeepEqual(o.Val, p.Val)
}

// String renders the op in the paper's notation, e.g. "COMMIT(T0/u1, 42)".
func (o Op) String() string {
	switch o.Kind {
	case OpRequestCommit, OpCommit:
		return fmt.Sprintf("%s(%s, %v)", o.Kind, o.Txn, o.Val)
	default:
		return fmt.Sprintf("%s(%s)", o.Kind, o.Txn)
	}
}
