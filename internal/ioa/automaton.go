package ioa

// Automaton is an I/O automaton specialized to nested transaction systems.
//
// The model requires (Input Condition) that an automaton be prepared to
// receive any input operation at any time; implementations therefore must
// not return an error from Step for operations they claim as inputs.
// For output operations, Step verifies the operation's preconditions
// against the current state and returns an error if they do not hold; this
// is what lets the replay checkers detect that a candidate sequence is not
// a schedule.
//
// All automata in this repository are state-deterministic in the paper's
// sense: their state is a function of their schedule. Nondeterminism shows
// up only in which enabled operation is performed next, which is the
// driver's choice.
type Automaton interface {
	// Name identifies the automaton within a system, for diagnostics.
	Name() string

	// HasOp reports whether op is an operation of this automaton (input or
	// output). Composition routes each system operation to every component
	// for which HasOp is true.
	HasOp(op Op) bool

	// IsOutput reports whether op is an output operation of this automaton.
	// In a well-formed system each operation is the output of at most one
	// component.
	IsOutput(op Op) bool

	// Enabled returns the output operations enabled in the current state.
	// The returned slice is freshly allocated and may be in any order.
	Enabled() []Op

	// Step applies op atomically. If op is an output of this automaton and
	// its preconditions do not hold, Step returns an error and leaves the
	// state unchanged. Input operations are always accepted, per the Input
	// Condition.
	Step(op Op) error
}
