package ioa

import "testing"

func BenchmarkSystemStepThroughput(b *testing.B) {
	sys := NewSystem(&pinger{max: b.N}, &toggle{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Step(Create("in")); err != nil {
			b.Fatal(err)
		}
		if err := sys.Step(RequestCommit("out", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDriverRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := NewSystem(&pinger{max: 100}, &toggle{})
		if _, _, err := NewDriver(sys, int64(i)).Run(500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleProject(b *testing.B) {
	sys := NewSystem(&pinger{max: 500}, &toggle{})
	sched, _, err := NewDriver(sys, 1).Run(2000)
	if err != nil {
		b.Fatal(err)
	}
	pg := sys.Components()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Project(pg)
	}
}
