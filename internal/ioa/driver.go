package ioa

import (
	"fmt"
	"math/rand"
)

// Driver generates random executions of a system by repeatedly choosing a
// uniformly random enabled output operation and performing it. This
// realizes the model's nondeterminism: any schedule the system can exhibit
// has positive probability of being explored (for the finite systems built
// in this repository).
type Driver struct {
	sys *System
	rng *rand.Rand

	// Bias, if non-nil, adjusts the relative weight of an enabled op;
	// returning 0 removes the op from consideration this step. Used e.g.
	// to tune the frequency of scheduler ABORT decisions.
	Bias func(Op) float64

	// OnStep, if non-nil, runs after each performed operation with the
	// schedule so far; returning an error stops the run. Used by invariant
	// checkers (e.g. Lemma 8) that must hold after every step.
	OnStep func(op Op, sched Schedule) error
}

// NewDriver returns a driver over sys using the given seed. Identical seeds
// over identical systems reproduce identical executions.
func NewDriver(sys *System, seed int64) *Driver {
	return &Driver{sys: sys, rng: rand.New(rand.NewSource(seed))}
}

// Run performs up to maxSteps operations, stopping early when no output
// operation is enabled (the system is quiescent). It returns the schedule
// of the whole run and whether the system became quiescent.
func (d *Driver) Run(maxSteps int) (Schedule, bool, error) {
	for i := 0; i < maxSteps; i++ {
		op, ok := d.pick()
		if !ok {
			return d.sys.Schedule(), true, nil
		}
		if err := d.sys.Step(op); err != nil {
			return d.sys.Schedule(), false, fmt.Errorf("driver: enabled op rejected: %w", err)
		}
		if d.OnStep != nil {
			if err := d.OnStep(op, d.sys.sched); err != nil {
				return d.sys.Schedule(), false, err
			}
		}
	}
	return d.sys.Schedule(), false, nil
}

// pick chooses a weighted-random enabled op.
func (d *Driver) pick() (Op, bool) {
	enabled := d.sys.Enabled()
	if len(enabled) == 0 {
		return Op{}, false
	}
	if d.Bias == nil {
		return enabled[d.rng.Intn(len(enabled))], true
	}
	weights := make([]float64, len(enabled))
	var total float64
	for i, op := range enabled {
		w := d.Bias(op)
		if w < 0 {
			w = 0
		}
		weights[i] = w
		total += w
	}
	if total == 0 {
		return Op{}, false
	}
	x := d.rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return enabled[i], true
		}
	}
	return enabled[len(enabled)-1], true
}
