package ioa

import (
	"errors"
	"fmt"
)

// ErrNoRealization is returned by FindRealization when the bounded search
// exhausts its budget or the full space without realizing the target
// projection.
var ErrNoRealization = errors.New("no realizing schedule found")

// FindRealization searches for a schedule u of the system returned by
// build such that project(u) equals target — the paper's serial
// correctness condition "γ|T = u|T for some schedule u of S", with
// project(·) playing the role of ·|T.
//
// The search is depth-first with two prunings: a branch dies as soon as
// its projection stops being a prefix of target, and branches that extend
// the projection are explored before branches that do not (the projection
// can only be completed by eventually performing its next operation).
// Budget bounds the number of visited states; a nil error means a
// realizing schedule was found and is returned.
func FindRealization(build func() (*System, error), project func(Schedule) Schedule, target Schedule, budget int) (Schedule, error) {
	visited := 0
	var found Schedule

	var rec func(prefix Schedule) (bool, error)
	rec = func(prefix Schedule) (bool, error) {
		if budget > 0 && visited >= budget {
			return false, fmt.Errorf("%w: budget of %d states exhausted", ErrNoRealization, budget)
		}
		visited++
		sys, err := build()
		if err != nil {
			return false, err
		}
		if i, err := sys.Replay(prefix); err != nil {
			return false, fmt.Errorf("realize: replay diverged at %d: %w", i, err)
		}
		proj := project(prefix)
		if !isPrefix(proj, target) {
			return false, nil // dead branch
		}
		if len(proj) == len(target) {
			found = prefix
			return true, nil
		}
		// Explore extending ops first: the next target op, when enabled,
		// is always worth trying immediately.
		next := target[len(proj)]
		var extending, others []Op
		for _, op := range sys.Enabled() {
			stepProj := project(Schedule{op})
			switch {
			case len(stepProj) == 0:
				others = append(others, op)
			case stepProj[0].Equal(next):
				extending = append(extending, op)
			default:
				// Performing this op would break the prefix; skip it.
			}
		}
		for _, op := range append(extending, others...) {
			nextPrefix := make(Schedule, len(prefix)+1)
			copy(nextPrefix, prefix)
			nextPrefix[len(prefix)] = op
			ok, err := rec(nextPrefix)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}

	ok, err := rec(nil)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: explored %d states", ErrNoRealization, visited)
	}
	return found, nil
}

// isPrefix reports whether a is a prefix of b.
func isPrefix(a, b Schedule) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
