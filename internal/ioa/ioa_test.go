package ioa

import (
	"errors"
	"fmt"
	"testing"
)

func TestOpConstructorsAndString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Create("T0"), "CREATE(T0)"},
		{RequestCreate("T0/u"), "REQUEST-CREATE(T0/u)"},
		{RequestCommit("T0/u", 7), "REQUEST-COMMIT(T0/u, 7)"},
		{Commit("T0/u", "v"), "COMMIT(T0/u, v)"},
		{Abort("T0/u"), "ABORT(T0/u)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpEqualUsesDeepEqual(t *testing.T) {
	type payload struct{ M map[string]int }
	a := Commit("t", payload{M: map[string]int{"x": 1}})
	b := Commit("t", payload{M: map[string]int{"x": 1}})
	c := Commit("t", payload{M: map[string]int{"x": 2}})
	if !a.Equal(b) {
		t.Error("structurally equal ops should be Equal")
	}
	if a.Equal(c) {
		t.Error("different payloads should not be Equal")
	}
	if a.Equal(Abort("t")) {
		t.Error("different kinds should not be Equal")
	}
}

func TestIsReturn(t *testing.T) {
	if !Commit("t", nil).IsReturn() || !Abort("t").IsReturn() {
		t.Error("COMMIT and ABORT are return operations")
	}
	if Create("t").IsReturn() || RequestCommit("t", nil).IsReturn() {
		t.Error("CREATE/REQUEST-COMMIT are not return operations")
	}
}

// toggle is a minimal automaton: input PING (modeled as CREATE(in)),
// output PONG (REQUEST-COMMIT(out, n)) enabled once per ping.
type toggle struct {
	pings int
	pongs int
}

func (a *toggle) Name() string { return "toggle" }
func (a *toggle) HasOp(op Op) bool {
	return (op.Kind == OpCreate && op.Txn == "in") || (op.Kind == OpRequestCommit && op.Txn == "out")
}
func (a *toggle) IsOutput(op Op) bool { return op.Kind == OpRequestCommit && op.Txn == "out" }
func (a *toggle) Enabled() []Op {
	if a.pongs < a.pings {
		return []Op{RequestCommit("out", a.pongs)}
	}
	return nil
}
func (a *toggle) Step(op Op) error {
	switch {
	case op.Kind == OpCreate:
		a.pings++
		return nil
	case op.Kind == OpRequestCommit:
		if a.pongs >= a.pings {
			return fmt.Errorf("%w: no ping outstanding", ErrNotEnabled)
		}
		a.pongs++
		return nil
	}
	return errors.New("unexpected op")
}

// pinger owns the CREATE(in) output.
type pinger struct{ sent, max int }

func (p *pinger) Name() string        { return "pinger" }
func (p *pinger) HasOp(op Op) bool    { return op.Kind == OpCreate && op.Txn == "in" }
func (p *pinger) IsOutput(op Op) bool { return p.HasOp(op) }
func (p *pinger) Enabled() []Op {
	if p.sent < p.max {
		return []Op{Create("in")}
	}
	return nil
}
func (p *pinger) Step(op Op) error {
	if p.sent >= p.max {
		return fmt.Errorf("%w: done", ErrNotEnabled)
	}
	p.sent++
	return nil
}

func TestSystemComposition(t *testing.T) {
	tg := &toggle{}
	pg := &pinger{max: 3}
	sys := NewSystem(pg, tg)
	sched, quiescent, err := NewDriver(sys, 1).Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if !quiescent {
		t.Error("system should quiesce")
	}
	if len(sched) != 6 {
		t.Fatalf("expected 6 ops (3 pings + 3 pongs), got %d:\n%v", len(sched), sched)
	}
	if tg.pings != 3 || tg.pongs != 3 {
		t.Errorf("toggle state: %+v", tg)
	}
}

func TestSystemRejectsUnownedOp(t *testing.T) {
	sys := NewSystem(&toggle{})
	// CREATE(in) is an input of toggle but output of nobody here.
	if err := sys.Step(Create("in")); !errors.Is(err, ErrNoOwner) {
		t.Fatalf("want ErrNoOwner, got %v", err)
	}
}

func TestSystemRejectsDisabledOutput(t *testing.T) {
	sys := NewSystem(&pinger{max: 0})
	if err := sys.Step(Create("in")); !errors.Is(err, ErrNotEnabled) {
		t.Fatalf("want ErrNotEnabled, got %v", err)
	}
	if len(sys.Schedule()) != 0 {
		t.Error("failed step must not be recorded")
	}
}

func TestReplayStopsAtFirstBadStep(t *testing.T) {
	sys := NewSystem(&pinger{max: 1}, &toggle{})
	seq := Schedule{Create("in"), RequestCommit("out", 0), RequestCommit("out", 1)}
	i, err := sys.Replay(seq)
	if err == nil || i != 2 {
		t.Fatalf("replay should fail at index 2, got i=%d err=%v", i, err)
	}
}

func TestScheduleProjectAndFilter(t *testing.T) {
	tg := &toggle{}
	pg := &pinger{max: 2}
	sys := NewSystem(pg, tg)
	sched, _, err := NewDriver(sys, 3).Run(100)
	if err != nil {
		t.Fatal(err)
	}
	pings := sched.Filter(func(op Op) bool { return op.Kind == OpCreate })
	if len(pings) != 2 {
		t.Errorf("filter: got %d pings", len(pings))
	}
	proj := sched.Project(pg)
	if len(proj) != 2 {
		t.Errorf("project onto pinger: got %d ops", len(proj))
	}
	if !sched.Project(tg).Equal(sched) {
		t.Error("toggle participates in every op of this system")
	}
}

func TestScheduleEqual(t *testing.T) {
	a := Schedule{Create("x"), Commit("x", 1)}
	b := Schedule{Create("x"), Commit("x", 1)}
	c := Schedule{Create("x"), Commit("x", 2)}
	if !a.Equal(b) || a.Equal(c) || a.Equal(b[:1]) {
		t.Error("schedule equality broken")
	}
}

func TestOpsForProjection(t *testing.T) {
	parent := func(t TxnName) (TxnName, bool) {
		switch t {
		case "T0/u":
			return "T0", true
		case "T0/u/c":
			return "T0/u", true
		}
		return "", false
	}
	sched := Schedule{
		Create("T0"),
		RequestCreate("T0/u"),
		Create("T0/u"),
		RequestCreate("T0/u/c"),
		Create("T0/u/c"),
		RequestCommit("T0/u/c", 1),
		Commit("T0/u/c", 1),
		RequestCommit("T0/u", 2),
		Commit("T0/u", 2),
	}
	u := sched.OpsFor("T0/u", parent)
	want := Schedule{
		Create("T0/u"),
		RequestCreate("T0/u/c"),
		Commit("T0/u/c", 1),
		RequestCommit("T0/u", 2),
	}
	if !u.Equal(want) {
		t.Errorf("OpsFor(T0/u):\n got %v\nwant %v", u, want)
	}
	root := sched.OpsFor("T0", parent)
	if len(root) != 3 { // CREATE(T0), REQUEST-CREATE(u), COMMIT(u)
		t.Errorf("OpsFor(T0) = %v", root)
	}
}

func TestDriverDeterminism(t *testing.T) {
	runOnce := func(seed int64) Schedule {
		sys := NewSystem(&pinger{max: 5}, &toggle{})
		sched, _, err := NewDriver(sys, seed).Run(100)
		if err != nil {
			t.Fatal(err)
		}
		return sched
	}
	if !runOnce(7).Equal(runOnce(7)) {
		t.Error("same seed must reproduce the same schedule")
	}
}

func TestDriverBiasZeroExcludesOps(t *testing.T) {
	sys := NewSystem(&pinger{max: 5}, &toggle{})
	d := NewDriver(sys, 1)
	d.Bias = func(op Op) float64 {
		if op.Kind == OpCreate {
			return 0
		}
		return 1
	}
	sched, quiescent, err := d.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	// With pings excluded and none sent, nothing is ever enabled.
	if !quiescent || len(sched) != 0 {
		t.Errorf("bias-0 ops must never be chosen; got %v", sched)
	}
}

func TestDriverOnStepErrorStopsRun(t *testing.T) {
	sys := NewSystem(&pinger{max: 5}, &toggle{})
	d := NewDriver(sys, 1)
	boom := errors.New("invariant broken")
	steps := 0
	d.OnStep = func(Op, Schedule) error {
		steps++
		if steps == 3 {
			return boom
		}
		return nil
	}
	_, _, err := d.Run(100)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if steps != 3 {
		t.Errorf("driver should stop at the failing step, ran %d", steps)
	}
}

func TestScheduleIndex(t *testing.T) {
	s := Schedule{Create("a"), Commit("a", 1)}
	if i := s.Index(func(op Op) bool { return op.Kind == OpCommit }); i != 1 {
		t.Errorf("Index = %d", i)
	}
	if i := s.Index(func(op Op) bool { return op.Kind == OpAbort }); i != -1 {
		t.Errorf("Index of missing = %d", i)
	}
}
