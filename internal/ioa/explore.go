package ioa

import (
	"errors"
	"fmt"
)

// ErrExploreBudget is returned by Explore when the schedule budget is
// exhausted before the state space was covered.
var ErrExploreBudget = errors.New("exploration budget exhausted")

// Explorer enumerates the complete tree of schedules of a system:
// depth-first over every enabled output operation at every state. Because
// systems are not copyable, branching is realized by rebuilding a fresh
// system and replaying the prefix; this is quadratic in schedule length but
// exact, and intended for the small scenarios used in exhaustive
// verification tests.
type Explorer struct {
	// Build returns a fresh instance of the system under exploration.
	Build func() (*System, error)
	// MaxDepth bounds the schedule length explored (0 = unbounded).
	MaxDepth int
	// Budget bounds the total number of visited schedules; when exceeded,
	// Run returns ErrExploreBudget. 0 means unbounded.
	Budget int
	// Prune, if non-nil, skips branches starting with the given operation
	// at the given depth (e.g. to ignore ABORT branches).
	Prune func(op Op, depth int) bool
	// Visit runs for every reachable schedule (including intermediate
	// prefixes) with the live system in the state reached by it. Returning
	// an error stops the exploration.
	Visit func(sys *System, sched Schedule) error

	visited int
}

// Visited reports how many schedules the last Run visited.
func (e *Explorer) Visited() int { return e.visited }

// Run explores the schedule tree. It returns nil when the bounded state
// space was covered with every visit succeeding.
func (e *Explorer) Run() error {
	e.visited = 0
	return e.explore(nil)
}

// explore rebuilds the system, replays prefix, visits, and recurses on
// every enabled op.
func (e *Explorer) explore(prefix Schedule) error {
	if e.Budget > 0 && e.visited >= e.Budget {
		return ErrExploreBudget
	}
	e.visited++
	sys, err := e.Build()
	if err != nil {
		return err
	}
	if i, err := sys.Replay(prefix); err != nil {
		return fmt.Errorf("explore: replay diverged at %d: %w", i, err)
	}
	if e.Visit != nil {
		if err := e.Visit(sys, prefix); err != nil {
			return fmt.Errorf("explore: schedule %v: %w", prefix, err)
		}
	}
	if e.MaxDepth > 0 && len(prefix) >= e.MaxDepth {
		return nil
	}
	for _, op := range sys.Enabled() {
		if e.Prune != nil && e.Prune(op, len(prefix)) {
			continue
		}
		next := make(Schedule, len(prefix)+1)
		copy(next, prefix)
		next[len(prefix)] = op
		if err := e.explore(next); err != nil {
			return err
		}
	}
	return nil
}
