package ioa

import "strings"

// Schedule is a finite sequence of operations — the observable part of an
// execution (paper Section 2.1). Because all automata here are
// state-deterministic, a schedule determines the resulting state.
type Schedule []Op

// Project returns the subsequence of operations that belong to the given
// automaton (written β|A in the paper).
func (s Schedule) Project(a Automaton) Schedule {
	var out Schedule
	for _, op := range s {
		if a.HasOp(op) {
			out = append(out, op)
		}
	}
	return out
}

// Filter returns the subsequence of operations for which keep returns true.
func (s Schedule) Filter(keep func(Op) bool) Schedule {
	var out Schedule
	for _, op := range s {
		if keep(op) {
			out = append(out, op)
		}
	}
	return out
}

// Equal reports whether two schedules are identical op for op.
func (s Schedule) Equal(t Schedule) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if !s[i].Equal(t[i]) {
			return false
		}
	}
	return true
}

// Index returns the position of the first operation matching pred, or -1.
func (s Schedule) Index(pred func(Op) bool) int {
	for i, op := range s {
		if pred(op) {
			return i
		}
	}
	return -1
}

// String renders the schedule one operation per line.
func (s Schedule) String() string {
	var b strings.Builder
	for i, op := range s {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(op.String())
	}
	return b.String()
}

// OpsFor returns the subsequence of operations belonging to the transaction
// automaton named t, given the parent function of the transaction tree:
// CREATE(t) and REQUEST-COMMIT(t, v) belong to t, while
// REQUEST-CREATE(t'), COMMIT(t', v) and ABORT(t') belong to parent(t').
// This is the projection β|T used throughout the paper.
func (s Schedule) OpsFor(t TxnName, parent func(TxnName) (TxnName, bool)) Schedule {
	var out Schedule
	for _, op := range s {
		switch op.Kind {
		case OpCreate, OpRequestCommit:
			if op.Txn == t {
				out = append(out, op)
			}
		case OpRequestCreate, OpCommit, OpAbort:
			if p, ok := parent(op.Txn); ok && p == t {
				out = append(out, op)
			}
		}
	}
	return out
}
