package ioa

import (
	"errors"
	"fmt"
)

// ErrNotEnabled is wrapped by Step errors when an output operation's
// preconditions fail; replay checkers match it to report precondition
// violations distinctly from structural errors.
var ErrNotEnabled = errors.New("operation not enabled")

// ErrNoOwner is returned when a sequence contains an operation that no
// component claims as an output.
var ErrNoOwner = errors.New("operation is not an output of any component")

// System is the composition of a set of I/O automata (paper Section 2.1).
// A system is itself an automaton: its state is the tuple of component
// states, its outputs are the union of component outputs, and a step of the
// system applies the operation to every component that has it.
type System struct {
	autos []Automaton
	sched Schedule
}

// NewSystem composes the given automata. The caller is responsible for the
// model's requirement that component output sets be disjoint; Step enforces
// it lazily by rejecting operations claimed as output by two components.
func NewSystem(autos ...Automaton) *System {
	return &System{autos: append([]Automaton(nil), autos...)}
}

// Components returns the component automata.
func (s *System) Components() []Automaton {
	return append([]Automaton(nil), s.autos...)
}

// Component returns the component with the given name, or nil.
func (s *System) Component(name string) Automaton {
	for _, a := range s.autos {
		if a.Name() == name {
			return a
		}
	}
	return nil
}

// Enabled returns the union of the enabled output operations of all
// components, i.e. the output operations of the composed automaton that are
// enabled in the current state.
func (s *System) Enabled() []Op {
	var out []Op
	for _, a := range s.autos {
		out = append(out, a.Enabled()...)
	}
	return out
}

// Step performs one operation of the composed system: it verifies that
// exactly one component owns op as an output, then applies op to every
// component that has op. If the owner rejects the op (precondition failure)
// no component state changes. If any non-owner rejects an input, Step
// panics: that would violate the Input Condition and indicates a bug in the
// component, not in the schedule being executed.
func (s *System) Step(op Op) error {
	var owner Automaton
	for _, a := range s.autos {
		if a.IsOutput(op) {
			if owner != nil {
				return fmt.Errorf("op %v is an output of both %s and %s", op, owner.Name(), a.Name())
			}
			owner = a
		}
	}
	if owner == nil {
		return fmt.Errorf("%w: %v", ErrNoOwner, op)
	}
	// Apply to the owner first so a precondition failure leaves every
	// component untouched.
	if err := owner.Step(op); err != nil {
		return fmt.Errorf("%s: %w", owner.Name(), err)
	}
	for _, a := range s.autos {
		if a == owner || !a.HasOp(op) {
			continue
		}
		if err := a.Step(op); err != nil {
			panic(fmt.Sprintf("ioa: component %s rejected input %v: %v (Input Condition violated)", a.Name(), op, err))
		}
	}
	s.sched = append(s.sched, op)
	return nil
}

// Schedule returns a copy of the sequence of operations performed so far.
func (s *System) Schedule() Schedule {
	return append(Schedule(nil), s.sched...)
}

// Replay applies each operation of seq in order, returning the index and
// error of the first operation that is not a step of the system from its
// current state. A nil error means seq is a schedule of the system (from
// the state the system was in when Replay was called).
func (s *System) Replay(seq Schedule) (int, error) {
	for i, op := range seq {
		if err := s.Step(op); err != nil {
			return i, fmt.Errorf("step %d (%v): %w", i, op, err)
		}
	}
	return len(seq), nil
}
