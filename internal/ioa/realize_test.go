package ioa

import (
	"errors"
	"testing"
)

func pingPongBuild() (*System, error) {
	return NewSystem(&pinger{max: 3}, &toggle{}), nil
}

func pongProjection(s Schedule) Schedule {
	return s.Filter(func(op Op) bool { return op.Kind == OpRequestCommit })
}

func TestFindRealizationFindsTarget(t *testing.T) {
	target := Schedule{RequestCommit("out", 0), RequestCommit("out", 1)}
	u, err := FindRealization(pingPongBuild, pongProjection, target, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !pongProjection(u).Equal(target) {
		t.Fatalf("realization %v does not project to %v", u, target)
	}
}

func TestFindRealizationEmptyTargetTrivial(t *testing.T) {
	u, err := FindRealization(pingPongBuild, pongProjection, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pongProjection(u)) != 0 {
		t.Fatalf("empty target realized by %v", u)
	}
}

func TestFindRealizationRejectsImpossible(t *testing.T) {
	// The toggle numbers pongs sequentially; a pong "5" first is impossible.
	target := Schedule{RequestCommit("out", 5)}
	_, err := FindRealization(pingPongBuild, pongProjection, target, 10000)
	if !errors.Is(err, ErrNoRealization) {
		t.Fatalf("want ErrNoRealization, got %v", err)
	}
}

func TestFindRealizationBudgetExhaustion(t *testing.T) {
	// A reachable target with an absurdly small budget fails cleanly.
	target := Schedule{RequestCommit("out", 0), RequestCommit("out", 1), RequestCommit("out", 2)}
	_, err := FindRealization(pingPongBuild, pongProjection, target, 2)
	if !errors.Is(err, ErrNoRealization) {
		t.Fatalf("want ErrNoRealization (budget), got %v", err)
	}
}

func TestIsPrefix(t *testing.T) {
	a := Schedule{Create("x")}
	b := Schedule{Create("x"), Commit("x", 1)}
	if !isPrefix(a, b) || !isPrefix(nil, a) || !isPrefix(b, b) {
		t.Error("prefix positives broken")
	}
	if isPrefix(b, a) || isPrefix(Schedule{Create("y")}, b) {
		t.Error("prefix negatives broken")
	}
}
