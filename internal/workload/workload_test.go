package workload

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/quorum"
	"repro/internal/sim"
)

func testStore(t *testing.T, seed int64) *cluster.Store {
	t.Helper()
	dms := []string{"d0", "d1", "d2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: seed})
	store, err := cluster.Open(net, []cluster.ItemSpec{
		{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)},
	}, cluster.WithCallTimeout(25*time.Millisecond), cluster.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		store.Close()
		net.Close()
	})
	return store
}

func TestRunCommitsAll(t *testing.T) {
	store := testStore(t, 1)
	res, err := Run(context.Background(), store, Profile{
		ReadFraction: 0.5, OpsPerTxn: 2, Items: []string{"x"}, Seed: 1,
	}, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 20 || res.Failed != 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Throughput() <= 0 {
		t.Error("throughput must be positive")
	}
}

func TestNestedWorkloadToleratesAborts(t *testing.T) {
	store := testStore(t, 2)
	res, err := Run(context.Background(), store, Profile{
		ReadFraction: 0, OpsPerTxn: 3, NestDepth: 2, SubAbortProb: 0.5,
		Items: []string{"x"}, Seed: 2,
	}, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 20 {
		t.Errorf("committed = %d", res.Committed)
	}
	if res.Tolerated == 0 {
		t.Error("expected some tolerated subtransaction aborts")
	}
}

func TestFlatWorkloadNeverInjectsTopLevelAborts(t *testing.T) {
	store := testStore(t, 3)
	res, err := Run(context.Background(), store, Profile{
		ReadFraction: 0, OpsPerTxn: 2, NestDepth: 0, SubAbortProb: 1,
		Items: []string{"x"}, Seed: 3,
	}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tolerated != 0 || res.Failed != 0 {
		t.Errorf("flat workload must not inject aborts: %+v", res)
	}
}

func TestNoItemsRejected(t *testing.T) {
	store := testStore(t, 4)
	if _, err := Run(context.Background(), store, Profile{}, 1, 1); err == nil {
		t.Error("empty item list must fail")
	}
}

func TestProfileDefaults(t *testing.T) {
	p := Profile{}.withDefaults()
	if p.OpsPerTxn != 2 {
		t.Errorf("default OpsPerTxn = %d", p.OpsPerTxn)
	}
}

func TestZipfianDeterministicAndSkewed(t *testing.T) {
	z, err := newZipfian(100, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	draw := func() []int {
		rng := rand.New(rand.NewSource(42))
		counts := make([]int, 100)
		for i := 0; i < 20000; i++ {
			r := z.next(rng)
			if r < 0 || r >= 100 {
				t.Fatalf("rank %d out of range", r)
			}
			counts[r]++
		}
		return counts
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at rank %d: %d vs %d", i, a[i], b[i])
		}
	}
	// YCSB-grade skew: rank 0 dominates, and the head vastly outdraws an
	// equal-width slice of the tail.
	if a[0] <= a[1] || a[0] < 1000 {
		t.Fatalf("rank 0 drew %d (rank 1 %d); zipfian head too cold", a[0], a[1])
	}
	head, tail := 0, 0
	for i := 0; i < 10; i++ {
		head += a[i]
		tail += a[90+i]
	}
	if head < 10*tail {
		t.Fatalf("head 10 ranks drew %d, tail 10 drew %d; skew too weak for theta .99", head, tail)
	}
}

func TestZipfianThetaZeroIsNearUniform(t *testing.T) {
	z, err := newZipfian(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[z.next(rng)]++
	}
	for i, c := range counts {
		if c < 3500 || c > 6500 {
			t.Fatalf("theta=0 rank %d drew %d of 50000; expected ~5000", i, c)
		}
	}
}

func TestZipfianValidation(t *testing.T) {
	if _, err := newZipfian(0, 0.5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := newZipfian(10, 1); err == nil {
		t.Error("theta=1 accepted")
	}
	if _, err := newZipfian(10, -0.1); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := (Profile{Items: []string{"x"}, Distribution: "pareto"}).withDefaults().picker(); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestZipfianProfileDefaults(t *testing.T) {
	p := Profile{Distribution: DistZipfian}.withDefaults()
	if p.Theta != DefaultTheta {
		t.Errorf("zipfian default theta = %v, want %v", p.Theta, DefaultTheta)
	}
	if q := (Profile{}).withDefaults(); q.Distribution != DistUniform {
		t.Errorf("default distribution = %q", q.Distribution)
	}
}

func TestZipfianWorkloadRuns(t *testing.T) {
	store := testStore(t, 9)
	res, err := Run(context.Background(), store, Profile{
		ReadFraction: 0.95, OpsPerTxn: 2, Items: []string{"x"},
		Distribution: DistZipfian, Theta: 0.99, Seed: 9,
	}, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 20 {
		t.Errorf("committed = %d", res.Committed)
	}
}

func TestHotspotSkewsTowardFirstItem(t *testing.T) {
	// Pure generator-level test: with Hotspot = 1 every op hits Items[0].
	dms := []string{"h0", "h1", "h2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: 8})
	store, err := cluster.Open(net, []cluster.ItemSpec{
		{Name: "hot", Initial: 0, DMs: dms, Config: quorum.Majority(dms)},
		{Name: "cold", Initial: 0, DMs: []string{"c0"}, Config: quorum.ReadOneWriteAll([]string{"c0"})},
	}, cluster.WithCallTimeout(25*time.Millisecond), cluster.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		store.Close()
		net.Close()
	}()
	res, err := Run(context.Background(), store, Profile{
		ReadFraction: 0, OpsPerTxn: 1, Hotspot: 1,
		Items: []string{"hot", "cold"}, Seed: 8,
	}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 10 {
		t.Fatalf("committed = %d", res.Committed)
	}
	// All writes went to "hot": its version number is 10, cold's stays 0.
	if err := store.Run(context.Background(), func(tx *cluster.Txn) error {
		_, vn, err := tx.ReadVersioned(context.Background(), "hot")
		if err != nil {
			return err
		}
		if vn != 10 {
			t.Errorf("hot vn = %d, want 10", vn)
		}
		_, vn, err = tx.ReadVersioned(context.Background(), "cold")
		if err != nil {
			return err
		}
		if vn != 0 {
			t.Errorf("cold vn = %d, want 0", vn)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
