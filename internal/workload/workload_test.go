package workload

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/quorum"
	"repro/internal/sim"
)

func testStore(t *testing.T, seed int64) *cluster.Store {
	t.Helper()
	dms := []string{"d0", "d1", "d2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: seed})
	store, err := cluster.Open(net, []cluster.ItemSpec{
		{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)},
	}, cluster.WithCallTimeout(25*time.Millisecond), cluster.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		store.Close()
		net.Close()
	})
	return store
}

func TestRunCommitsAll(t *testing.T) {
	store := testStore(t, 1)
	res, err := Run(context.Background(), store, Profile{
		ReadFraction: 0.5, OpsPerTxn: 2, Items: []string{"x"}, Seed: 1,
	}, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 20 || res.Failed != 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Throughput() <= 0 {
		t.Error("throughput must be positive")
	}
}

func TestNestedWorkloadToleratesAborts(t *testing.T) {
	store := testStore(t, 2)
	res, err := Run(context.Background(), store, Profile{
		ReadFraction: 0, OpsPerTxn: 3, NestDepth: 2, SubAbortProb: 0.5,
		Items: []string{"x"}, Seed: 2,
	}, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 20 {
		t.Errorf("committed = %d", res.Committed)
	}
	if res.Tolerated == 0 {
		t.Error("expected some tolerated subtransaction aborts")
	}
}

func TestFlatWorkloadNeverInjectsTopLevelAborts(t *testing.T) {
	store := testStore(t, 3)
	res, err := Run(context.Background(), store, Profile{
		ReadFraction: 0, OpsPerTxn: 2, NestDepth: 0, SubAbortProb: 1,
		Items: []string{"x"}, Seed: 3,
	}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tolerated != 0 || res.Failed != 0 {
		t.Errorf("flat workload must not inject aborts: %+v", res)
	}
}

func TestNoItemsRejected(t *testing.T) {
	store := testStore(t, 4)
	if _, err := Run(context.Background(), store, Profile{}, 1, 1); err == nil {
		t.Error("empty item list must fail")
	}
}

func TestProfileDefaults(t *testing.T) {
	p := Profile{}.withDefaults()
	if p.OpsPerTxn != 2 {
		t.Errorf("default OpsPerTxn = %d", p.OpsPerTxn)
	}
}

func TestHotspotSkewsTowardFirstItem(t *testing.T) {
	// Pure generator-level test: with Hotspot = 1 every op hits Items[0].
	dms := []string{"h0", "h1", "h2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: 8})
	store, err := cluster.Open(net, []cluster.ItemSpec{
		{Name: "hot", Initial: 0, DMs: dms, Config: quorum.Majority(dms)},
		{Name: "cold", Initial: 0, DMs: []string{"c0"}, Config: quorum.ReadOneWriteAll([]string{"c0"})},
	}, cluster.WithCallTimeout(25*time.Millisecond), cluster.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		store.Close()
		net.Close()
	}()
	res, err := Run(context.Background(), store, Profile{
		ReadFraction: 0, OpsPerTxn: 1, Hotspot: 1,
		Items: []string{"hot", "cold"}, Seed: 8,
	}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 10 {
		t.Fatalf("committed = %d", res.Committed)
	}
	// All writes went to "hot": its version number is 10, cold's stays 0.
	if err := store.Run(context.Background(), func(tx *cluster.Txn) error {
		_, vn, err := tx.ReadVersioned(context.Background(), "hot")
		if err != nil {
			return err
		}
		if vn != 10 {
			t.Errorf("hot vn = %d, want 10", vn)
		}
		_, vn, err = tx.ReadVersioned(context.Background(), "cold")
		if err != nil {
			return err
		}
		if vn != 0 {
			t.Errorf("cold vn = %d, want 0", vn)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
