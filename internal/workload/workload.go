// Package workload generates and drives transaction workloads against a
// cluster store, for the benchmark harness: read/write mixes over item
// sets, optional nesting, and deliberate subtransaction aborts (exercising
// the algorithm's abort tolerance).
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
)

// Profile shapes a workload.
type Profile struct {
	// ReadFraction is the probability an operation is a logical read.
	ReadFraction float64
	// OpsPerTxn is the number of logical operations per top-level
	// transaction (default 2).
	OpsPerTxn int
	// NestDepth wraps each operation in this many levels of
	// subtransactions (0 = flat).
	NestDepth int
	// SubAbortProb is the probability a subtransaction deliberately aborts
	// after doing its work; the parent tolerates the abort and continues.
	SubAbortProb float64
	// Items are the logical data items to touch.
	Items []string
	// Hotspot, when in (0, 1], is the probability an operation targets
	// Items[0] rather than a uniform choice — a simple contention knob.
	Hotspot float64
	// Seed drives the generator.
	Seed int64
}

func (p Profile) withDefaults() Profile {
	if p.OpsPerTxn <= 0 {
		p.OpsPerTxn = 2
	}
	return p
}

// Result summarizes a run.
type Result struct {
	Committed int
	Failed    int
	Tolerated int // deliberate subtransaction aborts survived
	Elapsed   time.Duration
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Elapsed.Seconds()
}

// errDeliberate marks the injected subtransaction failures.
var errDeliberate = errors.New("workload: deliberate abort")

// Run executes txns top-level transactions across workers concurrent
// workers against the store.
func Run(ctx context.Context, store *cluster.Store, p Profile, txns, workers int) (Result, error) {
	p = p.withDefaults()
	if len(p.Items) == 0 {
		return Result{}, errors.New("workload: no items")
	}
	if workers <= 0 {
		workers = 1
	}
	var (
		mu  sync.Mutex
		res Result
	)
	start := time.Now()
	work := make(chan int64)
	var wg sync.WaitGroup
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seed := range work {
				rng := rand.New(rand.NewSource(p.Seed + seed))
				tolerated, err := runTxn(ctx, store, p, rng)
				mu.Lock()
				res.Tolerated += tolerated
				if err != nil {
					res.Failed++
					if firstErr == nil && !errors.Is(err, context.DeadlineExceeded) {
						firstErr = fmt.Errorf("worker %d: %w", w, err)
					}
				} else {
					res.Committed++
				}
				mu.Unlock()
			}
		}(w)
	}
	for i := 0; i < txns; i++ {
		work <- int64(i)
	}
	close(work)
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, firstErr
}

// runTxn executes one top-level transaction per the profile.
func runTxn(ctx context.Context, store *cluster.Store, p Profile, rng *rand.Rand) (tolerated int, err error) {
	err = store.Run(ctx, func(tx *cluster.Txn) error {
		for op := 0; op < p.OpsPerTxn; op++ {
			item := p.Items[rng.Intn(len(p.Items))]
			if p.Hotspot > 0 && rng.Float64() < p.Hotspot {
				item = p.Items[0]
			}
			isRead := rng.Float64() < p.ReadFraction
			val := rng.Intn(1 << 20)
			// Deliberate aborts only make sense inside a subtransaction;
			// at the top level the failure would kill the whole txn.
			abortHere := p.NestDepth > 0 && p.SubAbortProb > 0 && rng.Float64() < p.SubAbortProb

			body := func(t *cluster.Txn) error {
				if isRead {
					_, err := t.Read(ctx, item)
					return err
				}
				if err := t.Write(ctx, item, val); err != nil {
					return err
				}
				if abortHere {
					return errDeliberate
				}
				return nil
			}
			err := nest(ctx, tx, p.NestDepth, body)
			if errors.Is(err, errDeliberate) {
				tolerated++
				continue // the parent tolerates the subtransaction abort
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	return tolerated, err
}

// nest wraps body in depth levels of subtransactions.
func nest(ctx context.Context, tx *cluster.Txn, depth int, body func(*cluster.Txn) error) error {
	if depth <= 0 {
		return body(tx)
	}
	return tx.Sub(ctx, func(sub *cluster.Txn) error {
		return nest(ctx, sub, depth-1, body)
	})
}
