// Package workload generates and drives transaction workloads against a
// cluster store, for the benchmark harness: read/write mixes over item
// sets, optional nesting, and deliberate subtransaction aborts (exercising
// the algorithm's abort tolerance).
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
)

// Profile shapes a workload.
type Profile struct {
	// ReadFraction is the probability an operation is a logical read.
	ReadFraction float64
	// OpsPerTxn is the number of logical operations per top-level
	// transaction (default 2).
	OpsPerTxn int
	// NestDepth wraps each operation in this many levels of
	// subtransactions (0 = flat).
	NestDepth int
	// SubAbortProb is the probability a subtransaction deliberately aborts
	// after doing its work; the parent tolerates the abort and continues.
	SubAbortProb float64
	// Items are the logical data items to touch.
	Items []string
	// Distribution selects the key popularity model: "uniform" (every
	// item equally likely, the default) or "zipfian" (rank-skewed per
	// Gray et al.'s self-similar generator, the YCSB standard — rank 0 is
	// Items[0], the hottest key).
	Distribution string
	// Theta is the zipfian skew parameter in [0, 1): 0 degenerates to
	// uniform, 0.99 is the YCSB default ("zipfian" with Theta 0 gets
	// 0.99). Ignored for uniform.
	Theta float64
	// Hotspot, when in (0, 1], is the probability an operation targets
	// Items[0] rather than a uniform choice.
	//
	// Deprecated: a two-point contention knob; use Distribution
	// "zipfian" with Theta for realistic skew. Kept as an alias — it
	// still works when Distribution is empty or "uniform".
	Hotspot float64
	// Seed drives the generator.
	Seed int64
}

const (
	// DistUniform and DistZipfian are the Distribution values.
	DistUniform = "uniform"
	DistZipfian = "zipfian"
	// DefaultTheta is the YCSB-standard zipfian skew.
	DefaultTheta = 0.99
)

func (p Profile) withDefaults() Profile {
	if p.OpsPerTxn <= 0 {
		p.OpsPerTxn = 2
	}
	if p.Distribution == "" {
		p.Distribution = DistUniform
	}
	if p.Distribution == DistZipfian && p.Theta == 0 {
		p.Theta = DefaultTheta
	}
	return p
}

// picker builds the key chooser the profile describes. The chooser is a
// pure function of the passed rng, so per-transaction seeded rngs keep
// runs replayable regardless of worker interleaving.
func (p Profile) picker() (func(rng *rand.Rand) string, error) {
	switch p.Distribution {
	case DistUniform:
		hot := p.Hotspot
		return func(rng *rand.Rand) string {
			i := rng.Intn(len(p.Items))
			if hot > 0 && rng.Float64() < hot {
				i = 0
			}
			return p.Items[i]
		}, nil
	case DistZipfian:
		z, err := newZipfian(len(p.Items), p.Theta)
		if err != nil {
			return nil, err
		}
		return func(rng *rand.Rand) string {
			return p.Items[z.next(rng)]
		}, nil
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q (want %q or %q)",
			p.Distribution, DistUniform, DistZipfian)
	}
}

// Result summarizes a run.
type Result struct {
	Committed int
	Failed    int
	Tolerated int // deliberate subtransaction aborts survived
	Elapsed   time.Duration
	// P50 and P99 are end-to-end latency quantiles over committed
	// transactions only (zero when nothing committed). ReadP50 and ReadP99
	// restrict to committed transactions that performed no writes — the
	// read experience, untainted by writer lock-wait tails.
	P50, P99         time.Duration
	ReadP50, ReadP99 time.Duration
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Elapsed.Seconds()
}

// errDeliberate marks the injected subtransaction failures.
var errDeliberate = errors.New("workload: deliberate abort")

// Run executes txns top-level transactions across workers concurrent
// workers against the store.
func Run(ctx context.Context, store *cluster.Store, p Profile, txns, workers int) (Result, error) {
	p = p.withDefaults()
	if len(p.Items) == 0 {
		return Result{}, errors.New("workload: no items")
	}
	pick, err := p.picker()
	if err != nil {
		return Result{}, err
	}
	if workers <= 0 {
		workers = 1
	}
	var (
		mu      sync.Mutex
		res     Result
		lat     []time.Duration
		readLat []time.Duration
	)
	start := time.Now()
	work := make(chan int64)
	var wg sync.WaitGroup
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seed := range work {
				rng := rand.New(rand.NewSource(p.Seed + seed))
				t0 := time.Now()
				tolerated, wrote, err := runTxn(ctx, store, p, rng, pick)
				d := time.Since(t0)
				mu.Lock()
				res.Tolerated += tolerated
				if err != nil {
					res.Failed++
					if firstErr == nil && !errors.Is(err, context.DeadlineExceeded) {
						firstErr = fmt.Errorf("worker %d: %w", w, err)
					}
				} else {
					res.Committed++
					lat = append(lat, d)
					if !wrote {
						readLat = append(readLat, d)
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	for i := 0; i < txns; i++ {
		work <- int64(i)
	}
	close(work)
	wg.Wait()
	res.Elapsed = time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		res.P50 = lat[len(lat)/2]
		res.P99 = lat[len(lat)*99/100]
	}
	sort.Slice(readLat, func(i, j int) bool { return readLat[i] < readLat[j] })
	if len(readLat) > 0 {
		res.ReadP50 = readLat[len(readLat)/2]
		res.ReadP99 = readLat[len(readLat)*99/100]
	}
	return res, firstErr
}

// runTxn executes one top-level transaction per the profile, reporting
// whether it performed any write.
func runTxn(ctx context.Context, store *cluster.Store, p Profile, rng *rand.Rand, pick func(*rand.Rand) string) (tolerated int, wrote bool, err error) {
	err = store.Run(ctx, func(tx *cluster.Txn) error {
		for op := 0; op < p.OpsPerTxn; op++ {
			item := pick(rng)
			isRead := rng.Float64() < p.ReadFraction
			if !isRead {
				wrote = true
			}
			val := rng.Intn(1 << 20)
			// Deliberate aborts only make sense inside a subtransaction;
			// at the top level the failure would kill the whole txn.
			abortHere := p.NestDepth > 0 && p.SubAbortProb > 0 && rng.Float64() < p.SubAbortProb

			body := func(t *cluster.Txn) error {
				if isRead {
					_, err := t.Read(ctx, item)
					return err
				}
				if err := t.Write(ctx, item, val); err != nil {
					return err
				}
				if abortHere {
					return errDeliberate
				}
				return nil
			}
			err := nest(ctx, tx, p.NestDepth, body)
			if errors.Is(err, errDeliberate) {
				tolerated++
				continue // the parent tolerates the subtransaction abort
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	return tolerated, wrote, err
}

// nest wraps body in depth levels of subtransactions.
func nest(ctx context.Context, tx *cluster.Txn, depth int, body func(*cluster.Txn) error) error {
	if depth <= 0 {
		return body(tx)
	}
	return tx.Sub(ctx, func(sub *cluster.Txn) error {
		return nest(ctx, sub, depth-1, body)
	})
}
