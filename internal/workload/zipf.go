package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// zipfian draws ranks in [0, n) with P(rank i) ∝ 1/(i+1)^theta — the
// self-similar generator of Gray et al. ("Quickly Generating
// Billion-Record Synthetic Databases", SIGMOD '94) as popularized by
// YCSB. Rank 0 is the hottest key. All state is precomputed; next is a
// pure function of the caller's rng, so concurrent workers with their own
// seeded rngs stay replayable.
//
// math/rand's Zipf is not used: its s>1 parameterization cannot express
// the benchmark-standard theta in (0, 1) (YCSB's 0.99).
type zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

func newZipfian(n int, theta float64) (*zipfian, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipfian needs items, got %d", n)
	}
	if theta < 0 || theta >= 1 {
		return nil, fmt.Errorf("workload: zipfian theta %v out of [0, 1)", theta)
	}
	z := &zipfian{n: n, theta: theta}
	zeta2 := zeta(2, theta)
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z, nil
}

// zeta is the generalized harmonic number H_{n,theta}.
func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfian) next(rng *rand.Rand) int {
	if z.n == 1 {
		return 0
	}
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	i := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if i >= z.n {
		i = z.n - 1
	}
	return i
}
