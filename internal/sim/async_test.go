package sim

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestAsyncNodeDeferredReply exercises the AsyncHandler path: the handler
// banks the reply functions and a separate goroutine answers them later, in
// order — the shape a durable replica uses to ack after a log flush while
// its actor loop keeps absorbing requests.
func TestAsyncNodeDeferredReply(t *testing.T) {
	net := NewNetwork(Config{Seed: 7})
	defer net.Close()

	type banked struct {
		req   any
		reply func(any)
	}
	var mu sync.Mutex
	var queue []banked
	notifies := 0
	srv := NewAsyncNode(net, "srv", func(_ string, req any, reply func(any)) {
		mu.Lock()
		defer mu.Unlock()
		if req == "notify" {
			notifies++
			reply("ignored") // no-op for Notify traffic
			return
		}
		queue = append(queue, banked{req: req, reply: reply})
	})
	defer srv.Shutdown()
	cli := NewNode(net, "cli", nil)
	defer cli.Shutdown()

	// Drain the bank on a delay, like a group-commit flusher would.
	go func() {
		for {
			time.Sleep(2 * time.Millisecond)
			mu.Lock()
			for _, b := range queue {
				b.reply("echo:" + b.req.(string))
			}
			queue = nil
			mu.Unlock()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, msg := range []string{"a", "b", "c"} {
		resp, err := cli.Call(ctx, "srv", msg)
		if err != nil {
			t.Fatalf("call %q: %v", msg, err)
		}
		if resp != "echo:"+msg {
			t.Fatalf("call %q answered %v", msg, resp)
		}
	}

	cli.Notify("srv", "notify")
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := notifies
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("notify handled %d times, want 1", n)
		}
		time.Sleep(time.Millisecond)
	}
}
