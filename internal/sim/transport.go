package sim

import "repro/internal/transport"

// The simulated network is one backend of the transport seam: Serve and
// Client make *Network a transport.Transport, and *Node already speaks the
// Client/Server vocabulary (Call, Notify, ID, Close). Every seeded-replay
// guarantee is carried through unchanged — the cluster layer talks to the
// interface, the interface talks to the same lanes, fates and inboxes.

// Compile-time interface conformance.
var (
	_ transport.Transport       = (*Network)(nil)
	_ transport.Client          = (*Node)(nil)
	_ transport.Server          = (*Node)(nil)
	_ transport.OverloadHarness = (*Node)(nil)
)

// Serve registers id on the network with the given handler and starts its
// node. With transport.WithAdmission the node gets the bounded priority
// service queue. The error return is for interface parity; the sim network
// cannot fail a registration.
func (n *Network) Serve(id string, h transport.Handler, opts ...transport.ServeOption) (transport.Server, error) {
	cfg := transport.ResolveServeOptions(opts)
	var nodeOpts []NodeOption
	if cfg.Admission != nil {
		nodeOpts = append(nodeOpts, WithAdmission(*cfg.Admission))
	}
	return NewAsyncNode(n, id, h, nodeOpts...), nil
}

// Client registers a caller-only node named id on the network.
func (n *Network) Client(id string) (transport.Client, error) {
	return NewNode(n, id, nil), nil
}
