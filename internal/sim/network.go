// Package sim provides the simulated distributed substrate the systems-
// layer experiments run on: named nodes connected by a message-passing
// network with configurable latency, loss, duplication, reordering,
// partitions and crash/restart, plus a small request/reply (RPC) layer.
// Everything runs in one process with goroutines standing in for
// machines, per the reproduction plan.
//
// Replayability: every random choice the network makes (drop, duplicate,
// reorder, latency jitter) is drawn from a per-link generator seeded
// deterministically from Config.Seed and the order in which links first
// carry traffic — never from a generator shared across links. Concurrent
// sends on different links therefore cannot perturb each other's fate
// streams, which is what lets the chaos harness (internal/chaos) replay a
// whole campaign from a single seed. Messages on one directed link are
// delivered in FIFO order (like a TCP connection); reordering is modeled
// by holding a message back for a bounded extra delay so that traffic on
// other links overtakes it.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Message is a network datagram.
type Message struct {
	From    string
	To      string
	Payload any
}

// Config parameterizes the network.
type Config struct {
	// MinLatency and MaxLatency bound the uniformly sampled one-way
	// delivery delay. Zero values deliver with only scheduling delay.
	MinLatency time.Duration
	MaxLatency time.Duration
	// DropProb is the probability a message is silently lost.
	DropProb float64
	// DupProb is the probability a message is delivered twice, back to
	// back, exercising the receivers' idempotency paths.
	DupProb float64
	// ReorderProb is the probability a message is held back for
	// ReorderDelay before delivery, letting messages on other links
	// overtake it (bounded reordering; links themselves stay FIFO).
	ReorderProb float64
	// ReorderDelay is the extra hold-back applied to reordered messages.
	ReorderDelay time.Duration
	// Seed makes latency, loss, duplication and reordering reproducible.
	Seed int64
	// InboxSize bounds each node's receive buffer and each link's transit
	// queue; messages arriving at a full buffer are dropped, modeling
	// receiver overload. Default 1024.
	InboxSize int
	// FateFeedback has the network report each lost message back to the
	// RPC layer the moment its fate is decided — the simulation analogue
	// of a TCP reset — so a call whose request or reply was dropped fails
	// immediately instead of waiting out a wall-clock timeout. Every fate
	// is drawn from per-lane generators, so with feedback on, failure
	// detection is a pure function of the seed rather than a race between
	// a timer and the scheduler. Deterministic harnesses rely on this.
	FateFeedback bool
}

// Stats is a snapshot of network counters. Sent counts Send calls;
// Delivered and Dropped count delivery outcomes, so a duplicated message
// can contribute two deliveries to a single send.
type Stats struct {
	Sent       int64
	Delivered  int64
	Dropped    int64
	Duplicated int64
	Reordered  int64
	ByType     map[string]int64
}

// latencyRange is a per-node delivery delay override.
type latencyRange struct {
	min, max time.Duration
}

// laneMsg is a message in transit on one directed link.
type laneMsg struct {
	msg       Message
	deliverAt time.Time
}

// lane is one directed link's transit queue. Messages enter in Send order
// and a dedicated goroutine delivers them FIFO at their stamped times; the
// lane's private rng decides fates so concurrent traffic on other lanes
// cannot shift its stream.
type lane struct {
	rng *rand.Rand
	ch  chan laneMsg
}

// Network connects nodes. All methods are safe for concurrent use.
type Network struct {
	cfg Config

	mu          sync.Mutex
	inboxes     map[string]chan Message
	crashed     map[string]bool
	cut         map[string]bool // "a|b" with a<b: link severed
	nodeLat     map[string]latencyRange
	lanes       map[string]*lane
	dropProb    float64
	dupProb     float64
	reorderProb float64
	reorderDel  time.Duration
	watchers    map[string]func(Message)
	closed      bool
	sent        int64
	delivered   int64
	dropped     int64
	duplicated  int64
	reordered   int64
	byType      map[string]int64

	stop chan struct{}

	// inflight counts messages accepted into lanes but not yet delivered
	// or dropped; idle (on mu) is broadcast when it reaches zero. A
	// counter+condvar rather than a WaitGroup because durable replicas
	// reply from their WAL flush goroutine, so a straggling send may race
	// a Quiesce — legal here (Quiesce only promises that earlier sends
	// have settled), but a WaitGroup forbids Add during a Wait at zero.
	inflight int
	idle     *sync.Cond
}

// NewNetwork returns a network with the given configuration.
func NewNetwork(cfg Config) *Network {
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 1024
	}
	n := &Network{
		cfg:         cfg,
		inboxes:     map[string]chan Message{},
		crashed:     map[string]bool{},
		cut:         map[string]bool{},
		nodeLat:     map[string]latencyRange{},
		lanes:       map[string]*lane{},
		dropProb:    cfg.DropProb,
		dupProb:     cfg.DupProb,
		reorderProb: cfg.ReorderProb,
		reorderDel:  cfg.ReorderDelay,
		watchers:    map[string]func(Message){},
		byType:      map[string]int64{},
		stop:        make(chan struct{}),
	}
	n.idle = sync.NewCond(&n.mu)
	return n
}

// Register creates (or returns) the inbox for a node id.
func (n *Network) Register(id string) <-chan Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ch, ok := n.inboxes[id]; ok {
		return ch
	}
	ch := make(chan Message, n.cfg.InboxSize)
	n.inboxes[id] = ch
	return ch
}

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// mix64 is a splitmix64 finalization round: it spreads (seed, k) into an
// independent-looking lane seed.
func mix64(seed, k int64) int64 {
	z := uint64(seed) + uint64(k)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// lane returns the transit queue for the directed link from→to, creating
// it (and its delivery goroutine) on first use. Lane seeds derive from the
// network seed and the lane's creation order, not the node names, so runs
// that name nodes differently (e.g. fresh per-process client counters)
// still draw identical fate streams. Caller holds n.mu.
func (n *Network) lane(from, to string) *lane {
	key := from + ">" + to
	if l, ok := n.lanes[key]; ok {
		return l
	}
	l := &lane{
		rng: rand.New(rand.NewSource(mix64(n.cfg.Seed, int64(len(n.lanes))))),
		ch:  make(chan laneMsg, n.cfg.InboxSize),
	}
	n.lanes[key] = l
	go n.laneLoop(l)
	return l
}

// PrimeLane pre-creates the directed delivery lane from→to. Lane fate
// streams are seeded by creation order, so harnesses that need identical
// streams across runs prime every lane they will use in a fixed order
// before any concurrent traffic can race lanes into existence.
func (n *Network) PrimeLane(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.lane(from, to)
}

// laneLoop delivers one lane's messages in FIFO order at their stamped
// delivery times.
func (n *Network) laneLoop(l *lane) {
	for {
		select {
		case <-n.stop:
			return
		case m := <-l.ch:
			if d := time.Until(m.deliverAt); d > 0 {
				time.Sleep(d)
			}
			n.deliver(m.msg)
			n.mu.Lock()
			n.settleLocked()
			n.mu.Unlock()
		}
	}
}

// deliver hands a message that reached its delivery time to the recipient,
// applying crash/partition/overload checks at delivery — exactly when a
// real network would discover them.
func (n *Network) deliver(m Message) {
	n.mu.Lock()
	ch, ok := n.inboxes[m.To]
	blocked := n.crashed[m.To] || n.cut[linkKey(m.From, m.To)] || n.closed
	n.mu.Unlock()
	if !ok || blocked {
		n.note(&n.dropped)
		if n.cfg.FateFeedback {
			n.notifyDrop(m)
		}
		return
	}
	select {
	case ch <- m:
		n.note(&n.delivered)
	default:
		n.note(&n.dropped) // receiver overloaded
		if n.cfg.FateFeedback {
			n.notifyDrop(m)
		}
	}
}

// Send queues a message for asynchronous FIFO delivery on its link after a
// sampled latency. Messages to or from crashed nodes, across severed
// links, or sampled as lost are silently dropped — exactly how the
// algorithms under test experience failures. Sampled duplication delivers
// a second copy back to back; sampled reordering holds the message for a
// bounded extra delay so other links' traffic overtakes it.
func (n *Network) Send(from, to string, payload any) {
	m := Message{From: from, To: to, Payload: payload}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.sent++
	n.byType[fmt.Sprintf("%T", payload)]++
	if n.crashed[from] {
		n.dropped++
		n.mu.Unlock()
		if n.cfg.FateFeedback {
			n.notifyDrop(m)
		}
		return
	}
	l := n.lane(from, to)
	if n.dropProb > 0 && l.rng.Float64() < n.dropProb {
		n.dropped++
		n.mu.Unlock()
		if n.cfg.FateFeedback {
			n.notifyDrop(m)
		}
		return
	}
	copies := 1
	if n.dupProb > 0 && l.rng.Float64() < n.dupProb {
		copies = 2
		n.duplicated++
	}
	lo, hi := n.cfg.MinLatency, n.cfg.MaxLatency
	// A per-node override applies to messages the node sends or receives;
	// when both endpoints have one, the slower range wins — a message is
	// only as fast as its slowest endpoint.
	for _, id := range [2]string{from, to} {
		if lr, ok := n.nodeLat[id]; ok && lr.min >= lo {
			lo, hi = lr.min, lr.max
		}
	}
	delay := lo
	if span := hi - lo; span > 0 {
		delay += time.Duration(l.rng.Int63n(int64(span)))
	}
	if n.reorderProb > 0 && l.rng.Float64() < n.reorderProb {
		delay += n.reorderDel
		n.reordered++
	}
	deliverAt := time.Now().Add(delay)
	congested := 0
	for i := 0; i < copies; i++ {
		n.inflight++
		select {
		case l.ch <- laneMsg{msg: m, deliverAt: deliverAt}:
		default:
			n.settleLocked()
			n.dropped++ // link congested
			congested++
		}
	}
	n.mu.Unlock()
	if n.cfg.FateFeedback && congested == copies && congested > 0 {
		// Only report congestion loss when no copy made it into transit:
		// if one survives, its own delivery (or drop) settles the call.
		n.notifyDrop(m)
	}
}

func (n *Network) note(counter *int64) {
	n.mu.Lock()
	*counter++
	n.mu.Unlock()
}

// watchDrops registers fn to be told about every lost message that names id
// as sender or recipient. Only active under Config.FateFeedback; the RPC
// layer uses it to fail pending calls the moment their traffic is lost.
func (n *Network) watchDrops(id string, fn func(Message)) {
	if !n.cfg.FateFeedback {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.watchers[id] = fn
}

// unwatchDrops removes id's drop watcher.
func (n *Network) unwatchDrops(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.watchers, id)
}

// notifyDrop tells the watchers at both endpoints that m was lost. Called
// without n.mu held: watchers complete pending calls, and must never be
// invoked from under the network lock.
func (n *Network) notifyDrop(m Message) {
	n.mu.Lock()
	from, to := n.watchers[m.From], n.watchers[m.To]
	n.mu.Unlock()
	if from != nil {
		from(m)
	}
	if to != nil && m.To != m.From {
		to(m)
	}
}

// Crash makes a node unreachable (its state is preserved; restart with
// Restart). In-flight messages to it are lost.
func (n *Network) Crash(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restart brings a crashed node back.
func (n *Network) Restart(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// Crashed reports whether a node is currently crashed.
func (n *Network) Crashed(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

// Disconnect severs the bidirectional link between a and b.
func (n *Network) Disconnect(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey(a, b)] = true
}

// Reconnect restores the link between a and b.
func (n *Network) Reconnect(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, linkKey(a, b))
}

// SetNodeLatency overrides the delivery delay for messages to or from one
// node, modeling a straggler (overloaded or distant) machine on an
// otherwise fast network. Zero min and max clear the override.
func (n *Network) SetNodeLatency(id string, min, max time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if min == 0 && max == 0 {
		delete(n.nodeLat, id)
		return
	}
	if max < min {
		max = min
	}
	n.nodeLat[id] = latencyRange{min: min, max: max}
}

// SetDropProb changes the message loss probability at runtime; the fault
// scheduler uses it to open and close loss episodes mid-run.
func (n *Network) SetDropProb(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropProb = p
}

// SetDupProb changes the message duplication probability at runtime.
func (n *Network) SetDupProb(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dupProb = p
}

// SetReorder changes the reordering probability and hold-back delay at
// runtime. Zero probability disables reordering.
func (n *Network) SetReorder(p float64, delay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reorderProb = p
	n.reorderDel = delay
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	byType := make(map[string]int64, len(n.byType))
	for k, v := range n.byType {
		byType[k] = v
	}
	return Stats{
		Sent: n.sent, Delivered: n.delivered, Dropped: n.dropped,
		Duplicated: n.duplicated, Reordered: n.reordered, ByType: byType,
	}
}

// Quiesce blocks until every message accepted so far has been delivered or
// dropped. It is a barrier for callers that have stopped sending — the
// chaos harness uses it so fault transitions never race in-flight traffic
// (which would make replays diverge); with senders still active it only
// guarantees the messages sent before the call have settled.
func (n *Network) Quiesce() {
	n.mu.Lock()
	for n.inflight > 0 {
		n.idle.Wait()
	}
	n.mu.Unlock()
}

// settleLocked records one message leaving transit. Caller holds mu.
func (n *Network) settleLocked() {
	n.inflight--
	if n.inflight == 0 {
		n.idle.Broadcast()
	}
}

// Close stops accepting sends, waits for in-flight deliveries to drain,
// and stops the lane delivery goroutines.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for n.inflight > 0 {
		n.idle.Wait()
	}
	n.mu.Unlock()
	close(n.stop)
}
