// Package sim provides the simulated distributed substrate the systems-
// layer experiments run on: named nodes connected by a message-passing
// network with configurable latency, loss, partitions and crash/restart,
// plus a small request/reply (RPC) layer. Everything runs in one process
// with goroutines standing in for machines, per the reproduction plan.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Message is a network datagram.
type Message struct {
	From    string
	To      string
	Payload any
}

// Config parameterizes the network.
type Config struct {
	// MinLatency and MaxLatency bound the uniformly sampled one-way
	// delivery delay. Zero values deliver with only scheduling delay.
	MinLatency time.Duration
	MaxLatency time.Duration
	// DropProb is the probability a message is silently lost.
	DropProb float64
	// Seed makes latency and loss reproducible.
	Seed int64
	// InboxSize bounds each node's receive buffer; messages arriving at a
	// full inbox are dropped, modeling receiver overload. Default 1024.
	InboxSize int
}

// Stats is a snapshot of network counters.
type Stats struct {
	Sent      int64
	Delivered int64
	Dropped   int64
	ByType    map[string]int64
}

// latencyRange is a per-node delivery delay override.
type latencyRange struct {
	min, max time.Duration
}

// Network connects nodes. All methods are safe for concurrent use.
type Network struct {
	cfg Config

	mu       sync.Mutex
	rng      *rand.Rand
	inboxes  map[string]chan Message
	crashed  map[string]bool
	cut      map[string]bool // "a|b" with a<b: link severed
	nodeLat  map[string]latencyRange
	closed   bool
	sent     int64
	deliverd int64
	dropped  int64
	byType   map[string]int64

	wg sync.WaitGroup
}

// NewNetwork returns a network with the given configuration.
func NewNetwork(cfg Config) *Network {
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 1024
	}
	return &Network{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		inboxes: map[string]chan Message{},
		crashed: map[string]bool{},
		cut:     map[string]bool{},
		nodeLat: map[string]latencyRange{},
		byType:  map[string]int64{},
	}
}

// Register creates (or returns) the inbox for a node id.
func (n *Network) Register(id string) <-chan Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ch, ok := n.inboxes[id]; ok {
		return ch
	}
	ch := make(chan Message, n.cfg.InboxSize)
	n.inboxes[id] = ch
	return ch
}

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Send queues a message for asynchronous delivery after a sampled latency.
// Messages to or from crashed nodes, across severed links, or sampled as
// lost are silently dropped — exactly how the algorithms under test
// experience failures.
func (n *Network) Send(from, to string, payload any) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.sent++
	n.byType[fmt.Sprintf("%T", payload)]++
	if n.crashed[from] || n.rng.Float64() < n.cfg.DropProb {
		n.dropped++
		n.mu.Unlock()
		return
	}
	lo, hi := n.cfg.MinLatency, n.cfg.MaxLatency
	// A per-node override applies to messages the node sends or receives;
	// when both endpoints have one, the slower range wins — a message is
	// only as fast as its slowest endpoint.
	for _, id := range [2]string{from, to} {
		if lr, ok := n.nodeLat[id]; ok && lr.min >= lo {
			lo, hi = lr.min, lr.max
		}
	}
	delay := lo
	if span := hi - lo; span > 0 {
		delay += time.Duration(n.rng.Int63n(int64(span)))
	}
	n.wg.Add(1)
	n.mu.Unlock()

	go func() {
		defer n.wg.Done()
		if delay > 0 {
			time.Sleep(delay)
		}
		n.mu.Lock()
		ch, ok := n.inboxes[to]
		blocked := n.crashed[to] || n.cut[linkKey(from, to)] || n.closed
		n.mu.Unlock()
		if !ok || blocked {
			n.note(&n.dropped)
			return
		}
		select {
		case ch <- Message{From: from, To: to, Payload: payload}:
			n.note(&n.deliverd)
		default:
			n.note(&n.dropped) // receiver overloaded
		}
	}()
}

func (n *Network) note(counter *int64) {
	n.mu.Lock()
	*counter++
	n.mu.Unlock()
}

// Crash makes a node unreachable (its state is preserved; restart with
// Restart). In-flight messages to it are lost.
func (n *Network) Crash(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restart brings a crashed node back.
func (n *Network) Restart(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// Crashed reports whether a node is currently crashed.
func (n *Network) Crashed(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

// Disconnect severs the bidirectional link between a and b.
func (n *Network) Disconnect(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey(a, b)] = true
}

// Reconnect restores the link between a and b.
func (n *Network) Reconnect(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, linkKey(a, b))
}

// SetNodeLatency overrides the delivery delay for messages to or from one
// node, modeling a straggler (overloaded or distant) machine on an
// otherwise fast network. Zero min and max clear the override.
func (n *Network) SetNodeLatency(id string, min, max time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if min == 0 && max == 0 {
		delete(n.nodeLat, id)
		return
	}
	if max < min {
		max = min
	}
	n.nodeLat[id] = latencyRange{min: min, max: max}
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	byType := make(map[string]int64, len(n.byType))
	for k, v := range n.byType {
		byType[k] = v
	}
	return Stats{Sent: n.sent, Delivered: n.deliverd, Dropped: n.dropped, ByType: byType}
}

// Close stops accepting sends and waits for in-flight deliveries to drain.
func (n *Network) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
}
