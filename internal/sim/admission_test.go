package sim

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// admissionReject is the explicit reject payload the admission tests use.
type admissionReject struct {
	Expired bool
}

// echoServer builds an admission-protected node whose handler records the
// requests it actually served, in order.
type echoServer struct {
	mu     sync.Mutex
	served []any
}

func (e *echoServer) handle(from string, req any) any {
	e.mu.Lock()
	e.served = append(e.served, req)
	e.mu.Unlock()
	return "ok"
}

func (e *echoServer) order() []any {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]any(nil), e.served...)
}

// classifyTag maps string requests by prefix: "c:" control, "w:" write,
// anything else read.
func classifyTag(req any) Priority {
	s, _ := req.(string)
	switch {
	case len(s) > 1 && s[:2] == "c:":
		return PrioControl
	case len(s) > 1 && s[:2] == "w:":
		return PrioWrite
	}
	return PrioRead
}

func TestAdmissionCapacityShedsExplicitly(t *testing.T) {
	net := NewNetwork(Config{Seed: 1})
	defer net.Close()
	srv := &echoServer{}
	node := NewNode(net, "s", srv.handle, WithAdmission(AdmissionConfig{
		Capacity: 2,
		Classify: classifyTag,
		Reject:   func(req any, expired bool) any { return admissionReject{Expired: expired} },
	}))
	defer node.Shutdown()

	node.HoldService()
	for i := 0; i < 5; i++ {
		if got := node.Inject("harness", fmt.Sprintf("r%d", i), time.Time{}); got != (i < 2) {
			t.Errorf("inject %d admitted = %v", i, got)
		}
	}
	st := node.Overload()
	if st.Admitted != 2 || st.Shed != 3 {
		t.Errorf("overload stats = %+v, want 2 admitted / 3 shed", st)
	}
	node.ResumeService()
	node.WaitServiceIdle()
	if got := srv.order(); len(got) != 2 || got[0] != "r0" || got[1] != "r1" {
		t.Errorf("served = %v, want the two admitted reads in order", got)
	}
}

func TestAdmissionRejectRepliesToCalls(t *testing.T) {
	net := NewNetwork(Config{Seed: 2})
	defer net.Close()
	srv := &echoServer{}
	node := NewNode(net, "s", srv.handle, WithAdmission(AdmissionConfig{
		Capacity: 1,
		Classify: classifyTag,
		Reject:   func(req any, expired bool) any { return admissionReject{Expired: expired} },
	}))
	defer node.Shutdown()
	client := NewNode(net, "c", nil)
	defer client.Shutdown()

	node.HoldService()
	// First call occupies the queue; the second must be rejected while the
	// service is held, and the caller must hear the rejection immediately —
	// not via its timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	firstDone := make(chan error, 1)
	go func() {
		_, err := client.Call(ctx, "s", "r-first")
		firstDone <- err
	}()
	// Wait until the first request is actually queued before offering the
	// second, so the shed verdict is not racy.
	deadline := time.Now().Add(2 * time.Second)
	for node.Overload().Admitted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first call never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	raw, err := client.Call(ctx, "s", "r-second")
	if err != nil {
		t.Fatalf("shed call errored (%v), want explicit reject reply", err)
	}
	if rej, ok := raw.(admissionReject); !ok || rej.Expired {
		t.Fatalf("shed call reply = %#v, want admissionReject{Expired: false}", raw)
	}
	if time.Since(start) > time.Second {
		t.Errorf("reject took %v, want immediate", time.Since(start))
	}
	node.ResumeService()
	if err := <-firstDone; err != nil {
		t.Fatalf("admitted call failed: %v", err)
	}
}

func TestAdmissionPriorityLadder(t *testing.T) {
	net := NewNetwork(Config{Seed: 3})
	defer net.Close()
	srv := &echoServer{}
	node := NewNode(net, "s", srv.handle, WithAdmission(AdmissionConfig{
		Capacity: 4,
		Classify: classifyTag,
	}))
	defer node.Shutdown()

	node.HoldService()
	node.Inject("h", "r0", time.Time{})
	node.Inject("h", "w:0", time.Time{})
	node.Inject("h", "r1", time.Time{})
	node.Inject("h", "c:commit", time.Time{})
	node.ResumeService()
	node.WaitServiceIdle()
	want := []any{"c:commit", "w:0", "r0", "r1"}
	got := srv.order()
	if len(got) != len(want) {
		t.Fatalf("served %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("served %v, want %v (control first, then writes, then reads)", got, want)
		}
	}
}

func TestAdmissionControlExemptFromCapacity(t *testing.T) {
	net := NewNetwork(Config{Seed: 4})
	defer net.Close()
	srv := &echoServer{}
	node := NewNode(net, "s", srv.handle, WithAdmission(AdmissionConfig{
		Capacity: 1,
		Classify: classifyTag,
	}))
	defer node.Shutdown()

	node.HoldService()
	node.Inject("h", "r0", time.Time{}) // fills the bulk capacity
	for i := 0; i < 5; i++ {
		if !node.Inject("h", fmt.Sprintf("c:%d", i), time.Time{}) {
			t.Fatalf("control request %d shed; control traffic must always be admitted", i)
		}
	}
	node.ResumeService()
	node.WaitServiceIdle()
	if st := node.Overload(); st.Shed != 0 || st.Admitted != 6 {
		t.Errorf("overload stats = %+v, want no sheds", st)
	}
}

func TestAdmissionWriteDisplacesQueuedRead(t *testing.T) {
	net := NewNetwork(Config{Seed: 5})
	defer net.Close()
	srv := &echoServer{}
	var shed []any
	var shedMu sync.Mutex
	node := NewNode(net, "s", srv.handle, WithAdmission(AdmissionConfig{
		Capacity: 2,
		Classify: classifyTag,
		OnShed: func(req any) {
			shedMu.Lock()
			shed = append(shed, req)
			shedMu.Unlock()
		},
	}))
	defer node.Shutdown()

	node.HoldService()
	node.Inject("h", "r0", time.Time{})
	node.Inject("h", "r1", time.Time{})
	if !node.Inject("h", "w:0", time.Time{}) {
		t.Fatal("write shed; it should displace the newest queued read")
	}
	node.ResumeService()
	node.WaitServiceIdle()
	shedMu.Lock()
	defer shedMu.Unlock()
	if len(shed) != 1 || shed[0] != "r1" {
		t.Errorf("shed = %v, want the newest queued read r1", shed)
	}
	got := srv.order()
	if len(got) != 2 || got[0] != "w:0" || got[1] != "r0" {
		t.Errorf("served = %v, want [w:0 r0]", got)
	}
}

func TestAdmissionExpiredOnArrivalDiscardedAtDequeue(t *testing.T) {
	net := NewNetwork(Config{Seed: 6})
	defer net.Close()
	clk := NewManualClock(time.Unix(1000, 0))
	srv := &echoServer{}
	node := NewNode(net, "s", srv.handle, WithAdmission(AdmissionConfig{
		Capacity: 8,
		Classify: classifyTag,
		Clock:    clk,
	}))
	defer node.Shutdown()

	node.HoldService()
	now := clk.Now()
	node.Inject("h", "r-expired", now.Add(-time.Nanosecond)) // already past deadline
	node.Inject("h", "r-live", now.Add(time.Hour))
	node.Inject("h", "r-nodeadline", time.Time{})
	node.ResumeService()
	node.WaitServiceIdle()
	st := node.Overload()
	if st.ExpiredDropped != 1 {
		t.Errorf("ExpiredDropped = %d, want 1", st.ExpiredDropped)
	}
	got := srv.order()
	if len(got) != 2 || got[0] != "r-live" || got[1] != "r-nodeadline" {
		t.Errorf("served = %v, want the two unexpired requests only", got)
	}
}

func TestAdmissionServeExpiredAblation(t *testing.T) {
	net := NewNetwork(Config{Seed: 7})
	defer net.Close()
	clk := NewManualClock(time.Unix(1000, 0))
	srv := &echoServer{}
	node := NewNode(net, "s", srv.handle, WithAdmission(AdmissionConfig{
		Capacity:     8,
		Classify:     classifyTag,
		Clock:        clk,
		ServeExpired: true,
	}))
	defer node.Shutdown()

	node.HoldService()
	node.Inject("h", "r-expired", clk.Now().Add(-time.Nanosecond))
	node.ResumeService()
	node.WaitServiceIdle()
	if st := node.Overload(); st.ServedExpired != 1 || st.ExpiredDropped != 0 {
		t.Errorf("overload stats = %+v, want the dead work served and counted", st)
	}
	if got := srv.order(); len(got) != 1 {
		t.Errorf("served = %v, want the expired request served anyway", got)
	}
}

func TestAdmissionShutdownDrainsQueue(t *testing.T) {
	net := NewNetwork(Config{Seed: 8})
	srv := &echoServer{}
	node := NewNode(net, "s", srv.handle, WithAdmission(AdmissionConfig{
		Capacity: 8,
		Classify: classifyTag,
	}))
	node.HoldService()
	node.Inject("h", "r0", time.Time{})
	node.Inject("h", "c:commit", time.Time{})
	// Shutdown with the service held: the drain must override the hold so
	// an orderly departure never strands delivered protocol messages.
	node.Shutdown()
	net.Close()
	if got := srv.order(); len(got) != 2 {
		t.Errorf("served = %v, want both queued requests drained at shutdown", got)
	}
}

func TestAdmissionDeadlineStampedFromContext(t *testing.T) {
	net := NewNetwork(Config{Seed: 9})
	defer net.Close()
	clk := NewManualClock(time.Unix(1000, 0))
	node := NewNode(net, "s", func(from string, req any) any { return "ok" },
		WithAdmission(AdmissionConfig{
			Capacity: 8,
			Clock:    clk,
		}))
	defer node.Shutdown()
	client := NewNode(net, "c", nil)
	defer client.Shutdown()

	dl := time.Now().Add(30 * time.Second)
	ctx, cancel := context.WithDeadline(context.Background(), dl)
	defer cancel()
	if _, err := client.Call(ctx, "s", "r0"); err != nil {
		t.Fatalf("call: %v", err)
	}
	// The deadline rode the envelope: a manual-clock receiver far in the
	// past must NOT treat the wall-clock deadline as expired, and the
	// admission bookkeeping must show the request served, not dropped.
	if st := node.Overload(); st.Admitted != 1 || st.ExpiredDropped != 0 {
		t.Errorf("overload stats = %+v", st)
	}
}
