package sim

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestSendDeliver(t *testing.T) {
	net := NewNetwork(Config{Seed: 1})
	defer net.Close()
	inbox := net.Register("b")
	net.Send("a", "b", "hello")
	select {
	case m := <-inbox:
		if m.From != "a" || m.To != "b" || m.Payload != "hello" {
			t.Errorf("message = %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLatencyBounds(t *testing.T) {
	const min, max = 2 * time.Millisecond, 10 * time.Millisecond
	net := NewNetwork(Config{MinLatency: min, MaxLatency: max, Seed: 2})
	defer net.Close()
	inbox := net.Register("b")
	start := time.Now()
	net.Send("a", "b", 1)
	<-inbox
	elapsed := time.Since(start)
	if elapsed < min {
		t.Errorf("delivered after %v, below min latency %v", elapsed, min)
	}
}

func TestCrashDropsMessages(t *testing.T) {
	net := NewNetwork(Config{Seed: 3})
	defer net.Close()
	inbox := net.Register("b")
	net.Crash("b")
	net.Send("a", "b", 1)
	select {
	case m := <-inbox:
		t.Fatalf("crashed node received %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
	net.Restart("b")
	net.Send("a", "b", 2)
	select {
	case <-inbox:
	case <-time.After(time.Second):
		t.Fatal("restarted node should receive")
	}
	if net.Crashed("b") {
		t.Error("Crashed after restart")
	}
}

func TestCrashedSenderDrops(t *testing.T) {
	net := NewNetwork(Config{Seed: 4})
	defer net.Close()
	inbox := net.Register("b")
	net.Crash("a")
	net.Send("a", "b", 1)
	select {
	case <-inbox:
		t.Fatal("message from crashed sender delivered")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestPartition(t *testing.T) {
	net := NewNetwork(Config{Seed: 5})
	defer net.Close()
	inbox := net.Register("b")
	net.Disconnect("a", "b")
	net.Send("a", "b", 1)
	select {
	case <-inbox:
		t.Fatal("message across severed link delivered")
	case <-time.After(50 * time.Millisecond):
	}
	net.Reconnect("a", "b")
	net.Send("a", "b", 2)
	select {
	case <-inbox:
	case <-time.After(time.Second):
		t.Fatal("message after reconnect lost")
	}
}

func TestDropProbability(t *testing.T) {
	net := NewNetwork(Config{DropProb: 1, Seed: 6})
	defer net.Close()
	inbox := net.Register("b")
	for i := 0; i < 10; i++ {
		net.Send("a", "b", i)
	}
	select {
	case <-inbox:
		t.Fatal("DropProb=1 delivered a message")
	case <-time.After(50 * time.Millisecond):
	}
	if st := net.Stats(); st.Dropped != 10 {
		t.Errorf("dropped = %d", st.Dropped)
	}
}

func TestStatsByType(t *testing.T) {
	net := NewNetwork(Config{Seed: 7})
	defer net.Close()
	net.Register("b")
	net.Send("a", "b", 42)
	net.Send("a", "b", "str")
	st := net.Stats()
	if st.ByType["int"] != 1 || st.ByType["string"] != 1 {
		t.Errorf("byType = %v", st.ByType)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	net := NewNetwork(Config{Seed: 8})
	defer net.Close()
	server := NewNode(net, "server", func(from string, req any) any {
		return req.(int) * 2
	})
	defer server.Shutdown()
	client := NewNode(net, "client", nil)
	defer client.Shutdown()

	resp, err := client.Call(context.Background(), "server", 21)
	if err != nil {
		t.Fatal(err)
	}
	if resp != 42 {
		t.Errorf("resp = %v", resp)
	}
}

func TestRPCTimeout(t *testing.T) {
	net := NewNetwork(Config{Seed: 9})
	defer net.Close()
	client := NewNode(net, "client", nil)
	defer client.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := client.Call(ctx, "nobody", 1)
	if !errors.Is(err, ErrRPCTimeout) {
		t.Fatalf("want ErrRPCTimeout, got %v", err)
	}
}

func TestRPCConcurrentCalls(t *testing.T) {
	net := NewNetwork(Config{MinLatency: 100 * time.Microsecond, MaxLatency: time.Millisecond, Seed: 10})
	defer net.Close()
	server := NewNode(net, "server", func(from string, req any) any { return req })
	defer server.Shutdown()
	client := NewNode(net, "client", nil)
	defer client.Shutdown()

	var wg sync.WaitGroup
	errs := make([]error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Call(context.Background(), "server", i)
			if err != nil {
				errs[i] = err
				return
			}
			if resp != i {
				errs[i] = errors.New("reply routed to wrong caller")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestServerStatePerActorDiscipline(t *testing.T) {
	net := NewNetwork(Config{Seed: 11})
	defer net.Close()
	// Handler mutates unsynchronized state; safe because handlers run on
	// the node's single loop goroutine.
	counter := 0
	server := NewNode(net, "server", func(from string, req any) any {
		counter++
		return counter
	})
	defer server.Shutdown()
	client := NewNode(net, "client", nil)
	defer client.Shutdown()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Call(context.Background(), "server", 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if counter != 20 {
		t.Errorf("counter = %d", counter)
	}
}

func TestCloseStopsDeliveries(t *testing.T) {
	net := NewNetwork(Config{Seed: 12})
	net.Register("b")
	net.Close()
	net.Send("a", "b", 1) // must not panic or deliver
	if st := net.Stats(); st.Delivered != 0 {
		t.Errorf("delivered after close: %+v", st)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	net := NewNetwork(Config{Seed: 13})
	defer net.Close()
	n := NewNode(net, "n", nil)
	n.Shutdown()
	n.Shutdown() // second call must not panic
}

func TestSetNodeLatencyStraggler(t *testing.T) {
	net := NewNetwork(Config{MinLatency: 10 * time.Microsecond, MaxLatency: 50 * time.Microsecond, Seed: 9})
	defer net.Close()
	fast := net.Register("fast")
	slow := net.Register("slow")
	net.SetNodeLatency("slow", 20*time.Millisecond, 25*time.Millisecond)

	start := time.Now()
	net.Send("a", "fast", 1)
	<-fast
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Errorf("fast node took %v; override leaked onto other nodes", elapsed)
	}

	// The override applies to messages the straggler receives …
	start = time.Now()
	net.Send("a", "slow", 1)
	<-slow
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("message to straggler took %v, want >= 20ms", elapsed)
	}
	// … and to messages it sends.
	start = time.Now()
	net.Send("slow", "fast", 1)
	<-fast
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("message from straggler took %v, want >= 20ms", elapsed)
	}

	// Clearing the override restores the base latency.
	net.SetNodeLatency("slow", 0, 0)
	start = time.Now()
	net.Send("a", "slow", 1)
	<-slow
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Errorf("cleared straggler still took %v", elapsed)
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	net := NewNetwork(Config{DupProb: 1, Seed: 20})
	defer net.Close()
	inbox := net.Register("b")
	net.Send("a", "b", "once")
	for i := 0; i < 2; i++ {
		select {
		case m := <-inbox:
			if m.Payload != "once" {
				t.Errorf("copy %d payload = %v", i, m.Payload)
			}
		case <-time.After(time.Second):
			t.Fatalf("copy %d not delivered", i)
		}
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 2 || st.Duplicated != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReorderLetsOtherLanesOvertake(t *testing.T) {
	net := NewNetwork(Config{ReorderProb: 1, ReorderDelay: 30 * time.Millisecond, Seed: 21})
	defer net.Close()
	inbox := net.Register("b")
	net.Send("a", "b", "held") // reordered: held back 30ms
	net.SetReorder(0, 0)
	net.Send("c", "b", "fast") // different lane, no hold-back
	first := <-inbox
	second := <-inbox
	if first.Payload != "fast" || second.Payload != "held" {
		t.Errorf("delivery order = %v, %v; want fast before held", first.Payload, second.Payload)
	}
	if st := net.Stats(); st.Reordered != 1 {
		t.Errorf("reordered = %d, want 1", st.Reordered)
	}
}

func TestLaneFIFO(t *testing.T) {
	// Even with randomized latency, one directed link delivers in order.
	net := NewNetwork(Config{MinLatency: 10 * time.Microsecond, MaxLatency: 2 * time.Millisecond, Seed: 22})
	defer net.Close()
	inbox := net.Register("b")
	const msgs = 50
	for i := 0; i < msgs; i++ {
		net.Send("a", "b", i)
	}
	for i := 0; i < msgs; i++ {
		select {
		case m := <-inbox:
			if m.Payload != i {
				t.Fatalf("message %d arrived out of order: %v", i, m.Payload)
			}
		case <-time.After(time.Second):
			t.Fatalf("message %d not delivered", i)
		}
	}
}

func TestQuiesceWaitsForTransit(t *testing.T) {
	net := NewNetwork(Config{MinLatency: 5 * time.Millisecond, MaxLatency: 5 * time.Millisecond, Seed: 23})
	defer net.Close()
	net.Register("b")
	net.Send("a", "b", 1)
	net.Quiesce()
	if st := net.Stats(); st.Delivered != 1 {
		t.Errorf("after Quiesce: %+v", st)
	}
}

func TestFateStreamsAreDeterministic(t *testing.T) {
	// Two networks built from the same seed must sample identical fates
	// for the same per-lane traffic, regardless of node naming: that is
	// the property the chaos harness's replay guarantee rests on.
	run := func(prefix string) Stats {
		net := NewNetwork(Config{
			DropProb: 0.3, DupProb: 0.3, ReorderProb: 0.3,
			ReorderDelay: 100 * time.Microsecond, Seed: 77,
		})
		defer net.Close()
		for _, id := range []string{"x", "y", "z"} {
			net.Register(prefix + id)
		}
		for i := 0; i < 200; i++ {
			net.Send(prefix+"x", prefix+"y", i)
			net.Send(prefix+"y", prefix+"z", i)
			net.Send(prefix+"z", prefix+"x", i)
		}
		net.Quiesce()
		return net.Stats()
	}
	a, b := run("run1-"), run("run2-")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different fates:\n%+v\n%+v", a, b)
	}
}

func TestNotifyFireAndForget(t *testing.T) {
	net := NewNetwork(Config{Seed: 10})
	defer net.Close()
	got := make(chan any, 1)
	server := NewNode(net, "srv", func(from string, req any) any {
		got <- req
		return "reply-that-must-not-be-sent"
	})
	defer server.Shutdown()
	client := NewNode(net, "cli", nil)
	defer client.Shutdown()

	client.Notify("srv", "ping")
	select {
	case req := <-got:
		if req != "ping" {
			t.Errorf("server saw %v", req)
		}
	case <-time.After(time.Second):
		t.Fatal("notify not delivered")
	}
	// No reply envelope may come back: the network's per-type counters
	// would show a reply if one was sent.
	time.Sleep(20 * time.Millisecond)
	if n := net.Stats().ByType["sim.reply"]; n != 0 {
		t.Errorf("notify generated %d replies, want 0", n)
	}
	// Calls on the same pair still work, so notify and RPC coexist.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	resp, err := client.Call(ctx, "srv", "ping2")
	if err != nil || resp != "reply-that-must-not-be-sent" {
		t.Errorf("call after notify = %v, %v", resp, err)
	}
}
