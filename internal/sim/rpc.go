package sim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// ErrRPCTimeout is returned by Call when the context expires before a reply
// arrives (lost request, lost reply, crashed server, or slow link — the
// caller cannot tell, exactly as in a real network). It is the shared
// transport.ErrTimeout sentinel, so callers can match either name.
var ErrRPCTimeout = transport.ErrTimeout

// ErrCallLost is returned by Call under Config.FateFeedback when the
// network reports that the request or its reply was dropped — crashed
// peer, severed link, or sampled loss. It carries the same meaning as
// ErrRPCTimeout (no answer is coming) but arrives the moment the fate is
// decided, so deterministic harnesses never race a timer against the
// scheduler. It is the shared transport.ErrLost sentinel.
var ErrCallLost = transport.ErrLost

// callLost is the sentinel a drop watcher delivers on a pending call's
// channel in place of a response.
type callLost struct{}

// envelope is an RPC request on the wire. Deadline, when non-zero, is the
// caller's absolute give-up time, stamped by Call from its context — the
// transport-level deadline propagation that lets an overload-protected
// receiver discard a request whose caller already gave up instead of
// serving it.
type envelope struct {
	ID       uint64
	Req      any
	Deadline time.Time
}

// reply is an RPC response on the wire.
type reply struct {
	ID   uint64
	Resp any
}

// Handler processes a request on a node and returns the response. Handlers
// run on the node's single loop goroutine, so a node's state needs no
// additional locking — the actor discipline. Handlers must not block.
type Handler func(from string, req any) any

// AsyncHandler processes a request on a node and replies through the given
// function instead of a return value. reply may be called at most once,
// either synchronously or later from another goroutine — the decoupling a
// durable replica needs to keep absorbing requests while earlier acks wait
// on a write-ahead-log flush. For fire-and-forget traffic (Notify), reply
// is a no-op. The handler itself still runs on the node's single loop
// goroutine, so node state keeps the actor discipline; only the reply
// escapes it. It is exactly the transport.Handler shape, so an
// AsyncHandler serves unchanged on any backend.
type AsyncHandler = transport.Handler

// Node is a network participant with an RPC loop: it can serve requests via
// its handler and issue calls to other nodes.
type Node struct {
	id  string
	net *Network

	handler  Handler
	ahandler AsyncHandler

	nextID  atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan any

	// admCfg holds the admission configuration until start builds the
	// queue; adm, when non-nil, is the bounded priority service queue
	// between the network loop and the handler.
	admCfg *AdmissionConfig
	adm    *transport.Queue

	stop chan struct{}
	done chan struct{}
}

// A NodeOption configures a Node at construction.
type NodeOption func(*Node)

// WithAdmission gives the node a bounded, prioritized service queue: see
// AdmissionConfig. Without it (the default) requests are served inline on
// the network loop, unbounded — the pre-overload-protection behavior.
func WithAdmission(cfg AdmissionConfig) NodeOption {
	return func(n *Node) { n.admCfg = &cfg }
}

// NewNode registers id on the network and starts its loop. handler may be
// nil for client-only nodes.
func NewNode(net *Network, id string, handler Handler, opts ...NodeOption) *Node {
	n := &Node{
		id:      id,
		net:     net,
		handler: handler,
		pending: map[uint64]chan any{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	n.start(opts)
	return n
}

// NewAsyncNode registers id on the network and starts its loop with an
// asynchronous handler: the reply is sent whenever the handler invokes its
// reply function, not when the handler returns.
func NewAsyncNode(net *Network, id string, handler AsyncHandler, opts ...NodeOption) *Node {
	n := &Node{
		id:       id,
		net:      net,
		ahandler: handler,
		pending:  map[uint64]chan any{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	n.start(opts)
	return n
}

// start applies options, registers the node and launches its goroutines.
func (n *Node) start(opts []NodeOption) {
	for _, o := range opts {
		o(n)
	}
	inbox := n.net.Register(n.id)
	n.net.watchDrops(n.id, n.onDrop) // no-op unless Config.FateFeedback
	if n.admCfg != nil {
		n.adm = transport.NewQueue(*n.admCfg, n.serveQueued, n.sendRejection)
	}
	go n.loop(inbox)
}

// serveQueued runs one dequeued admitted request through the handler; it
// is the admission queue's single service goroutine calling in.
func (n *Node) serveQueued(q transport.Queued) {
	n.serve(q.From, envelope{ID: q.ID, Req: q.Req, Deadline: q.Deadline})
}

// sendRejection transmits an explicit admission rejection to the caller.
func (n *Node) sendRejection(q transport.Queued, resp any) {
	n.net.Send(n.id, q.From, reply{ID: q.ID, Resp: resp})
}

// onDrop receives the fate of a lost message that named this node. If the
// message was a request this node sent, or a reply addressed to it, the
// matching pending call fails immediately with ErrCallLost.
func (n *Node) onDrop(m Message) {
	var id uint64
	switch p := m.Payload.(type) {
	case envelope:
		if m.From != n.id {
			return // a request we were meant to serve; nothing pending here
		}
		id = p.ID
	case reply:
		if m.To != n.id {
			return
		}
		id = p.ID
	default:
		return
	}
	if id == 0 {
		return // Notify traffic has no waiter
	}
	n.mu.Lock()
	ch := n.pending[id]
	delete(n.pending, id)
	n.mu.Unlock()
	if ch != nil {
		ch <- callLost{}
	}
}

// replier builds the reply function for one request. Notify traffic
// (envelope ID 0) expects no answer, so its replier is a no-op.
func (n *Node) replier(to string, id uint64) func(any) {
	if id == 0 {
		return func(any) {}
	}
	return func(resp any) {
		n.net.Send(n.id, to, reply{ID: id, Resp: resp})
	}
}

// ID returns the node's network identifier.
func (n *Node) ID() string { return n.id }

func (n *Node) loop(inbox <-chan Message) {
	defer close(n.done)
	for {
		select {
		case <-n.stop:
			// Drain what the network already delivered: Shutdown is an
			// orderly departure, not a crash (net.Crash models those), so a
			// protocol message that reached this node must not be silently
			// lost — a durable replica's log would otherwise miss a release
			// or commit its sender rightly believes delivered.
			for {
				select {
				case m := <-inbox:
					n.dispatch(m)
				default:
					return
				}
			}
		case m := <-inbox:
			n.dispatch(m)
		}
	}
}

// dispatch handles one delivered message on the loop goroutine. Requests
// go through admission when the node has one — replies never do: a reply
// completes a call this node is blocked on, and queueing it behind bulk
// traffic (or worse, shedding it) would deadlock the very backpressure
// admission exists to provide.
func (n *Node) dispatch(m Message) {
	switch p := m.Payload.(type) {
	case envelope:
		if n.adm != nil {
			n.adm.Offer(transport.Queued{From: m.From, ID: p.ID, Req: p.Req, Deadline: p.Deadline})
			return
		}
		n.serve(m.From, p)
	case reply:
		n.mu.Lock()
		ch := n.pending[p.ID]
		delete(n.pending, p.ID)
		n.mu.Unlock()
		if ch != nil {
			ch <- p.Resp
		}
	}
}

// serve runs one request through the node's handler and sends the reply
// for call traffic.
func (n *Node) serve(from string, p envelope) {
	if n.ahandler != nil {
		n.ahandler(from, p.Req, n.replier(from, p.ID))
		return
	}
	if n.handler == nil {
		return
	}
	resp := n.handler(from, p.Req)
	if p.ID != 0 {
		n.net.Send(n.id, from, reply{ID: p.ID, Resp: resp})
	}
}

// Call sends req to the node named to and waits for its reply or ctx
// expiry. Lost messages surface as ErrRPCTimeout via the context.
func (n *Node) Call(ctx context.Context, to string, req any) (any, error) {
	id := n.nextID.Add(1)
	ch := make(chan any, 1)
	n.mu.Lock()
	n.pending[id] = ch
	n.mu.Unlock()
	env := envelope{ID: id, Req: req}
	if dl, ok := ctx.Deadline(); ok {
		// Deadline propagation: the receiver learns when this caller gives
		// up, so an admission queue can discard the request at dequeue
		// instead of doing work nobody will read.
		env.Deadline = dl
	}
	n.net.Send(n.id, to, env)
	select {
	case resp := <-ch:
		if _, lost := resp.(callLost); lost {
			return nil, ErrCallLost
		}
		return resp, nil
	case <-ctx.Done():
		n.mu.Lock()
		delete(n.pending, id)
		n.mu.Unlock()
		return nil, ErrRPCTimeout
	case <-n.stop:
		return nil, errors.New("node shut down")
	}
}

// Notify sends req to the node named to without waiting for — or ever
// receiving — a reply: the envelope carries ID 0, which the receiver's
// loop handles but does not answer. Use it for fire-and-forget protocol
// messages (lock releases, read repair) where the sender cannot act on
// the outcome anyway and a lost message is harmless.
func (n *Node) Notify(to string, req any) {
	n.net.Send(n.id, to, envelope{ID: 0, Req: req})
}

// SendNotify sends a fire-and-forget protocol message from one node name to
// another directly through the network, without needing the sender's *Node.
// Server state machines use it to gossip among themselves (lease-resolution
// inquiries) before their own node handle exists — the message is
// indistinguishable from a Node.Notify on the wire.
func SendNotify(n *Network, from, to string, req any) {
	n.Send(from, to, envelope{ID: 0, Req: req})
}

// Shutdown stops the node's loop and waits for it to exit. With admission,
// the service goroutine drains whatever the loop enqueued before exiting —
// the same orderly-departure contract as the inbox drain. Idempotent.
func (n *Node) Shutdown() {
	n.net.unwatchDrops(n.id)
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	<-n.done
	if n.adm != nil {
		n.adm.Close()
	}
}

// Close is Shutdown under the name the transport interfaces use, so a
// *Node satisfies transport.Client and transport.Server directly.
func (n *Node) Close() { n.Shutdown() }
