package sim

import (
	"context"
	"testing"
)

func BenchmarkRPCRoundTrip(b *testing.B) {
	net := NewNetwork(Config{Seed: 1})
	defer net.Close()
	server := NewNode(net, "s", func(from string, req any) any { return req })
	defer server.Shutdown()
	client := NewNode(net, "c", nil)
	defer client.Shutdown()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, "s", i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	net := NewNetwork(Config{Seed: 2, InboxSize: 4096})
	defer net.Close()
	inbox := net.Register("b")
	go func() {
		for range inbox {
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send("a", "b", i)
	}
}
