package sim

import (
	"time"

	"repro/internal/transport"
)

// Overload admission control is transport-neutral machinery: the bounded
// priority queue itself lives in internal/transport (transport.Queue), so
// the sim and TCP backends share one implementation and their shed counts,
// displacement order and expiry semantics cannot drift. sim re-exports the
// configuration types and wires the queue into its Node.

// Priority is a request's admission class at an overload-protected node.
type Priority = transport.Priority

const (
	// PrioRead is fresh read traffic: first to be shed under pressure.
	PrioRead = transport.PrioRead
	// PrioWrite is write-intent traffic: may displace a queued read.
	PrioWrite = transport.PrioWrite
	// PrioControl is must-finish traffic: always admitted, served first.
	PrioControl = transport.PrioControl
)

// AdmissionConfig bounds and prioritizes a node's service queue; see
// transport.AdmissionConfig.
type AdmissionConfig = transport.AdmissionConfig

// OverloadStats are one node's admission counters.
type OverloadStats = transport.OverloadStats

// Overload returns the node's admission counters. Zero for nodes without
// an admission config.
func (n *Node) Overload() OverloadStats {
	if n.adm == nil {
		return OverloadStats{}
	}
	return n.adm.Stats()
}

// HoldService pauses the node's service goroutine: delivered requests keep
// being admitted (or shed) but none are served until ResumeService. A
// harness device — deterministic overload campaigns hold a replica, offer
// a seeded burst against the bounded queue, and resume, so the shed and
// expiry counts are a pure function of the burst. No-op without admission.
func (n *Node) HoldService() {
	if n.adm != nil {
		n.adm.Hold()
	}
}

// ResumeService undoes HoldService.
func (n *Node) ResumeService() {
	if n.adm != nil {
		n.adm.Resume()
	}
}

// WaitServiceIdle blocks until the admission queue is empty and no request
// is being served. Callers must not hold the service (ResumeService
// first). No-op without admission.
func (n *Node) WaitServiceIdle() {
	if n.adm != nil {
		n.adm.WaitIdle()
	}
}

// Inject offers a request straight to the node's admission queue, as if it
// had arrived from `from` with the given deadline, bypassing the network.
// Returns whether the request was admitted. A harness device for seeded
// overload bursts: no lanes, no drops, no scheduler — admission's verdict
// depends only on the queue state the harness controls. Requests injected
// this way are fire-and-forget (no reply is sent). No-op (false) without
// admission.
func (n *Node) Inject(from string, req any, deadline time.Time) bool {
	if n.adm == nil {
		return false
	}
	return n.adm.Offer(transport.Queued{From: from, ID: 0, Req: req, Deadline: deadline})
}
