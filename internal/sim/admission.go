package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Priority is a request's admission class at an overload-protected node.
// The ladder exists so traffic that finishes transactions — and thereby
// frees locks — can never be starved by fresh work: an overloaded replica
// that sheds a new read merely slows one caller, but shedding a commit
// would strand locks the whole cluster is waiting on.
type Priority int

const (
	// PrioRead is fresh read traffic: first to be shed under pressure.
	PrioRead Priority = iota
	// PrioWrite is write-intent traffic. Writes usually belong to
	// transactions already holding locks elsewhere, so under pressure a
	// write may displace a queued read rather than be shed itself.
	PrioWrite
	// PrioControl is must-finish traffic (commit, abort, release, lease,
	// reap): always admitted, never bounded, served first.
	PrioControl
)

// AdmissionConfig bounds and prioritizes a node's service queue. A node
// with an admission config stops serving requests inline on its network
// loop: delivered requests are classified and enqueued (or explicitly
// rejected), and a dedicated service goroutine drains the queue highest
// priority first. Handlers still run on that single goroutine, so the
// actor discipline — node state needs no locking — is preserved.
type AdmissionConfig struct {
	// Capacity bounds the queued PrioRead+PrioWrite requests. Control
	// traffic is exempt. Values below 1 are treated as 1.
	Capacity int
	// Classify maps a request to its priority; nil classifies everything
	// PrioRead.
	Classify func(req any) Priority
	// Reject builds the explicit response for a shed or expired request,
	// so callers learn "overloaded" immediately instead of timing out.
	// Nil (or a nil return) sheds silently; fire-and-forget requests
	// (Notify, envelope ID 0) are always shed without a reply.
	Reject func(req any, expired bool) any
	// Clock drives expired-on-arrival checks against request deadlines.
	// Nil means Wall. Deterministic harnesses pass their manual clock.
	Clock Clock
	// ServiceDelay models the CPU cost of serving one request. Zero (the
	// default) serves instantly; overload experiments set it so a replica
	// has a finite service rate worth protecting.
	ServiceDelay time.Duration
	// ServeExpired, when set, serves expired requests anyway (counting
	// them) instead of discarding them at dequeue — the "dead work"
	// ablation arm of overload experiments. Default off: expired requests
	// are rejected at dequeue without touching the handler.
	ServeExpired bool
	// OnShed, OnExpired and OnDepth are observation hooks, called from the
	// node's network and service goroutines: shed requests, expired-on-
	// arrival discards, and the bulk queue depth after each admission.
	OnShed    func(req any)
	OnExpired func(req any)
	OnDepth   func(depth int)
}

// OverloadStats are one node's admission counters.
type OverloadStats struct {
	// Admitted counts requests accepted into the service queue.
	Admitted int64
	// Shed counts requests explicitly rejected at admission (queue full).
	Shed int64
	// ExpiredDropped counts admitted requests discarded at dequeue because
	// their deadline had already passed — work that would have been dead.
	ExpiredDropped int64
	// ServedExpired counts expired requests served anyway (only under
	// AdmissionConfig.ServeExpired): the measured dead work of the
	// no-protection ablation.
	ServedExpired int64
}

// queuedReq is one admitted request awaiting service.
type queuedReq struct {
	from     string
	id       uint64
	req      any
	deadline time.Time
}

// admission is the bounded priority queue between a node's network loop
// and its service goroutine.
type admission struct {
	cfg  AdmissionConfig
	cond *sync.Cond

	mu      sync.Mutex
	queues  [PrioControl + 1][]queuedReq
	bulk    int // queued PrioRead + PrioWrite
	held    bool
	closed  bool
	serving bool

	admitted       atomic.Int64
	shed           atomic.Int64
	expiredDropped atomic.Int64
	servedExpired  atomic.Int64
}

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = Wall
	}
	a := &admission{cfg: cfg}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// queuedLocked returns the total queued requests; callers hold a.mu.
func (a *admission) queuedLocked() int {
	return a.bulk + len(a.queues[PrioControl])
}

// popLocked removes and returns the highest-priority queued request;
// callers hold a.mu and guarantee the queue is non-empty.
func (a *admission) popLocked() queuedReq {
	for pr := PrioControl; pr >= PrioRead; pr-- {
		q := a.queues[pr]
		if len(q) == 0 {
			continue
		}
		head := q[0]
		a.queues[pr] = q[1:]
		if pr != PrioControl {
			a.bulk--
		}
		return head
	}
	panic("sim: popLocked on empty admission queue")
}

// close wakes the service goroutine for its final drain.
func (a *admission) close() {
	a.mu.Lock()
	a.closed = true
	a.cond.Broadcast()
	a.mu.Unlock()
}

// admit classifies and enqueues one request, shedding under pressure.
// Returns whether the request entered the queue. Runs on the node's
// network loop goroutine (or, for Inject, the harness goroutine — the
// mutex makes that safe).
func (n *Node) admit(q queuedReq) bool {
	a := n.adm
	pr := PrioRead
	if a.cfg.Classify != nil {
		pr = a.cfg.Classify(q.req)
	}
	var displaced *queuedReq
	admitted := true
	a.mu.Lock()
	switch {
	case pr == PrioControl:
		a.queues[PrioControl] = append(a.queues[PrioControl], q)
	case a.bulk < a.cfg.Capacity:
		a.queues[pr] = append(a.queues[pr], q)
		a.bulk++
	case pr == PrioWrite && len(a.queues[PrioRead]) > 0:
		// Full, but a write outranks queued reads: shed the newest queued
		// read (it has waited least) and admit the write in its place.
		reads := a.queues[PrioRead]
		d := reads[len(reads)-1]
		a.queues[PrioRead] = reads[:len(reads)-1]
		displaced = &d
		a.queues[PrioWrite] = append(a.queues[PrioWrite], q)
	default:
		admitted = false
	}
	depth := a.bulk
	a.cond.Broadcast()
	a.mu.Unlock()
	if admitted {
		a.admitted.Add(1)
		if a.cfg.OnDepth != nil {
			a.cfg.OnDepth(depth)
		}
	}
	if displaced != nil {
		n.reject(*displaced, false)
	}
	if !admitted {
		n.reject(q, false)
	}
	return admitted
}

// reject counts a shed or expired request and, for calls that expect an
// answer, sends the explicit rejection so the caller fails fast instead of
// burning its timeout.
func (n *Node) reject(q queuedReq, expired bool) {
	a := n.adm
	if expired {
		a.expiredDropped.Add(1)
		if a.cfg.OnExpired != nil {
			a.cfg.OnExpired(q.req)
		}
	} else {
		a.shed.Add(1)
		if a.cfg.OnShed != nil {
			a.cfg.OnShed(q.req)
		}
	}
	if q.id == 0 || a.cfg.Reject == nil {
		return
	}
	if resp := a.cfg.Reject(q.req, expired); resp != nil {
		n.net.Send(n.id, q.from, reply{ID: q.id, Resp: resp})
	}
}

// serviceLoop drains the admission queue highest priority first. Requests
// whose deadline passed while they queued are discarded at dequeue —
// "expired on arrival" — so an overloaded replica never spends its service
// capacity on work whose caller already gave up.
func (n *Node) serviceLoop() {
	defer close(n.sdone)
	a := n.adm
	for {
		a.mu.Lock()
		for !a.closed && (a.held || a.queuedLocked() == 0) {
			a.cond.Wait()
		}
		if a.queuedLocked() == 0 {
			// Closed and drained: an orderly shutdown serves everything the
			// network already delivered, exactly like the inbox drain.
			a.mu.Unlock()
			return
		}
		q := a.popLocked()
		a.serving = true
		a.mu.Unlock()

		if !q.deadline.IsZero() && a.cfg.Clock.Now().After(q.deadline) {
			if a.cfg.ServeExpired {
				a.servedExpired.Add(1)
				n.serveAdmitted(q)
			} else {
				n.reject(q, true)
			}
		} else {
			n.serveAdmitted(q)
		}

		a.mu.Lock()
		a.serving = false
		if a.queuedLocked() == 0 {
			a.cond.Broadcast() // wake WaitServiceIdle
		}
		a.mu.Unlock()
	}
}

// serveAdmitted runs one dequeued request through the node's handler,
// charging the configured service delay first.
func (n *Node) serveAdmitted(q queuedReq) {
	if d := n.adm.cfg.ServiceDelay; d > 0 {
		time.Sleep(d)
	}
	n.serve(q.from, envelope{ID: q.id, Req: q.req, Deadline: q.deadline})
}

// Overload returns the node's admission counters. Zero for nodes without
// an admission config.
func (n *Node) Overload() OverloadStats {
	if n.adm == nil {
		return OverloadStats{}
	}
	return OverloadStats{
		Admitted:       n.adm.admitted.Load(),
		Shed:           n.adm.shed.Load(),
		ExpiredDropped: n.adm.expiredDropped.Load(),
		ServedExpired:  n.adm.servedExpired.Load(),
	}
}

// HoldService pauses the node's service goroutine: delivered requests keep
// being admitted (or shed) but none are served until ResumeService. A
// harness device — deterministic overload campaigns hold a replica, offer
// a seeded burst against the bounded queue, and resume, so the shed and
// expiry counts are a pure function of the burst. No-op without admission.
func (n *Node) HoldService() {
	if n.adm == nil {
		return
	}
	n.adm.mu.Lock()
	n.adm.held = true
	n.adm.mu.Unlock()
}

// ResumeService undoes HoldService.
func (n *Node) ResumeService() {
	if n.adm == nil {
		return
	}
	n.adm.mu.Lock()
	n.adm.held = false
	n.adm.cond.Broadcast()
	n.adm.mu.Unlock()
}

// WaitServiceIdle blocks until the admission queue is empty and no request
// is being served. Callers must not hold the service (ResumeService
// first). No-op without admission.
func (n *Node) WaitServiceIdle() {
	if n.adm == nil {
		return
	}
	a := n.adm
	a.mu.Lock()
	for !a.closed && (a.queuedLocked() > 0 || a.serving) {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// Inject offers a request straight to the node's admission queue, as if it
// had arrived from `from` with the given deadline, bypassing the network.
// Returns whether the request was admitted. A harness device for seeded
// overload bursts: no lanes, no drops, no scheduler — admission's verdict
// depends only on the queue state the harness controls. Requests injected
// this way are fire-and-forget (no reply is sent). No-op (false) without
// admission.
func (n *Node) Inject(from string, req any, deadline time.Time) bool {
	if n.adm == nil {
		return false
	}
	return n.admit(queuedReq{from: from, id: 0, req: req, deadline: deadline})
}
