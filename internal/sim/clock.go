package sim

import (
	"time"

	"repro/internal/transport"
)

// The clock abstraction lives in internal/transport (both backends'
// admission queues expire deadlines against it); sim re-exports it so
// existing harness code keeps reading naturally as sim.ManualClock etc.

// Clock abstracts time for components that must behave deterministically
// under the simulated network.
type Clock = transport.Clock

// Wall is the real-time clock; production stores use it.
var Wall = transport.Wall

// ManualClock is a Clock that only moves when told to.
type ManualClock = transport.ManualClock

// NewManualClock returns a ManualClock frozen at start.
func NewManualClock(start time.Time) *ManualClock {
	return transport.NewManualClock(start)
}
