package shard

import (
	"fmt"
	"sort"
	"strings"
)

// ParseSpec parses the -shards flag format used by the qcstore commands:
//
//	g0=dm0:dm1:dm2,g1=dm3:dm4:dm5
//
// Group order in the spec does not matter for placement (the ring hashes
// names), but the parsed slice preserves it for readable -inspect output.
func ParseSpec(spec string) ([]Group, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("shard: empty shard spec")
	}
	var groups []Group
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, dms, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("shard: bad group %q (want name=dm:dm:...)", part)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("shard: bad group %q: empty name", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("shard: duplicate group %q", name)
		}
		seen[name] = true
		g := Group{Name: name}
		for _, dm := range strings.Split(dms, ":") {
			dm = strings.TrimSpace(dm)
			if dm == "" {
				continue
			}
			g.DMs = append(g.DMs, dm)
		}
		if len(g.DMs) == 0 {
			return nil, fmt.Errorf("shard: group %q has no DMs", name)
		}
		groups = append(groups, g)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("shard: empty shard spec")
	}
	return groups, nil
}

// FormatSpec renders groups back into the -shards flag format, groups
// sorted by name so the output is canonical.
func FormatSpec(groups []Group) string {
	sorted := make([]Group, len(groups))
	copy(sorted, groups)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	parts := make([]string, 0, len(sorted))
	for _, g := range sorted {
		parts = append(parts, g.Name+"="+strings.Join(g.DMs, ":"))
	}
	return strings.Join(parts, ",")
}
