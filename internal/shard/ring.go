// Package shard places item keys onto replica groups with a deterministic
// consistent-hash ring. The ring is pure state: it knows nothing about
// transactions, quorums, or transports — internal/cluster layers the
// shard-aware router and live migration on top of it.
//
// Determinism is the contract. Placement is a function of (Seed, VNodes,
// group names, overrides) alone: the same ring state produces the same
// placement in every process, on every run, after any gob round-trip.
// That is what lets a chaos campaign replay a sharded cluster bit-for-bit
// from one int64 seed, and lets separate OS processes agree on placement
// from nothing but the serve flags.
//
// A Ring is not synchronized. Every holder (the store under its mutex,
// the router under its own, a replica inside its actor loop) guards its
// own copy; Clone makes handing copies out cheap and safe.
package shard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Group is one replica group: a named set of data managers that jointly
// store every item placed on the group. Quorum configuration for the
// group's items lives in the cluster layer (each item keeps its own
// Gifford config and generation lineage); the ring only decides which
// group an item belongs to.
type Group struct {
	// Name identifies the group on the ring. Placement hashes the name,
	// so renaming a group moves all its keys.
	Name string
	// DMs are the data manager ids of the group's members.
	DMs []string
}

// Clone returns a deep copy of the group.
func (g Group) Clone() Group {
	return Group{Name: g.Name, DMs: append([]string(nil), g.DMs...)}
}

// point is one virtual node on the ring: the hash of (seed, group, index)
// owning the arc that ends at it.
type point struct {
	h     uint64
	group string
}

// Ring is the placement state. Exported fields are the marshaled identity
// (gob round-trips them); the sorted vnode points are derived and rebuilt
// lazily after mutation or decode, so a decoded ring places identically
// to the ring that was encoded.
type Ring struct {
	// Seed perturbs every vnode hash, so independent rings (test
	// fixtures, disjoint clusters) get independent placements.
	Seed int64
	// VNodes is the number of virtual nodes per group. More vnodes
	// smooth the key distribution; 64 is plenty for a handful of groups.
	VNodes int
	// Epoch counts placement changes. Every mutation (add/remove group,
	// migrate a key) bumps it; routers cache it and clients use it to
	// invalidate placement-derived state such as freshness hints.
	Epoch int
	// Groups are the replica groups, in insertion order. Placement
	// depends only on the set of names, not the order.
	Groups []Group
	// Overrides pins individual keys to a named group regardless of the
	// hash placement. Live migration records its cutover here: the ring
	// stays the authority for where every key lives.
	Overrides map[string]string

	points []point // derived from (Seed, VNodes, Groups); nil = rebuild
}

// New builds a ring over the given groups. VNodes must be positive and
// group names unique and non-empty. The initial epoch is 1.
func New(seed int64, vnodes int, groups []Group) (*Ring, error) {
	if vnodes <= 0 {
		return nil, fmt.Errorf("shard: vnodes must be positive, got %d", vnodes)
	}
	seen := make(map[string]bool, len(groups))
	for _, g := range groups {
		if g.Name == "" {
			return nil, fmt.Errorf("shard: group with empty name")
		}
		if seen[g.Name] {
			return nil, fmt.Errorf("shard: duplicate group %q", g.Name)
		}
		seen[g.Name] = true
		if len(g.DMs) == 0 {
			return nil, fmt.Errorf("shard: group %q has no DMs", g.Name)
		}
	}
	r := &Ring{Seed: seed, VNodes: vnodes, Epoch: 1}
	for _, g := range groups {
		r.Groups = append(r.Groups, g.Clone())
	}
	r.rebuild()
	return r, nil
}

// hashParts folds null-separated parts through FNV-64a and finishes with
// a 64-bit avalanche mix. FNV is stable across Go versions and
// architectures (unlike maphash), which placement needs — but its
// dispersion on short, similar strings ("g0#1" vs "g0#2") is poor enough
// to skew vnode arcs by 3x, so the mix step spreads every input bit over
// the whole output.
func hashParts(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 finalizer: a bijective avalanche over uint64.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (r *Ring) rebuild() {
	r.points = make([]point, 0, len(r.Groups)*r.VNodes)
	seed := strconv.FormatInt(r.Seed, 10)
	for _, g := range r.Groups {
		for i := 0; i < r.VNodes; i++ {
			r.points = append(r.points, point{
				h:     hashParts(seed, g.Name, strconv.Itoa(i)),
				group: g.Name,
			})
		}
	}
	// Ties broken by group name so the sort is a total order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].group < r.points[j].group
	})
}

// ensure rebuilds the derived points when they are missing (fresh decode)
// or stale (group set changed size). Mutating methods also nil the slice
// explicitly, so a same-size rename cannot leave stale points behind.
func (r *Ring) ensure() {
	if want := len(r.Groups) * r.VNodes; len(r.points) != want || r.points == nil {
		r.rebuild()
	}
}

// Lookup returns the name of the group that owns key, or "" when the
// ring has no groups. Overrides win; otherwise the key hashes onto the
// ring and the first vnode clockwise owns it.
func (r *Ring) Lookup(key string) string {
	if g, ok := r.Overrides[key]; ok {
		return g
	}
	r.ensure()
	if len(r.points) == 0 {
		return ""
	}
	h := hashParts(strconv.FormatInt(r.Seed, 10), key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0 // wrap: the smallest point owns the arc past the largest
	}
	return r.points[i].group
}

// GroupOf resolves key to its full group record.
func (r *Ring) GroupOf(key string) (Group, bool) {
	return r.Group(r.Lookup(key))
}

// Group returns the group with the given name.
func (r *Ring) Group(name string) (Group, bool) {
	for _, g := range r.Groups {
		if g.Name == name {
			return g.Clone(), true
		}
	}
	return Group{}, false
}

// GroupNames returns the group names, sorted.
func (r *Ring) GroupNames() []string {
	names := make([]string, 0, len(r.Groups))
	for _, g := range r.Groups {
		names = append(names, g.Name)
	}
	sort.Strings(names)
	return names
}

// DMs returns every data manager id across all groups, sorted and
// deduplicated — the peer set a sharded cluster needs to serve.
func (r *Ring) DMs() []string {
	seen := map[string]bool{}
	var out []string
	for _, g := range r.Groups {
		for _, dm := range g.DMs {
			if !seen[dm] {
				seen[dm] = true
				out = append(out, dm)
			}
		}
	}
	sort.Strings(out)
	return out
}

// AddGroup adds a replica group and bumps the epoch. Consistent hashing
// bounds the fallout: only keys whose arcs the new group's vnodes claim
// move, roughly 1/N of them for N resulting groups.
func (r *Ring) AddGroup(g Group) error {
	if g.Name == "" {
		return fmt.Errorf("shard: group with empty name")
	}
	if len(g.DMs) == 0 {
		return fmt.Errorf("shard: group %q has no DMs", g.Name)
	}
	if _, ok := r.Group(g.Name); ok {
		return fmt.Errorf("shard: duplicate group %q", g.Name)
	}
	r.Groups = append(r.Groups, g.Clone())
	r.Epoch++
	r.points = nil
	return nil
}

// RemoveGroup removes a replica group and bumps the epoch. Overrides
// pinning keys to the removed group are dropped: those keys fall back to
// hash placement on the remaining groups.
func (r *Ring) RemoveGroup(name string) error {
	idx := -1
	for i, g := range r.Groups {
		if g.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("shard: no group %q", name)
	}
	r.Groups = append(r.Groups[:idx], r.Groups[idx+1:]...)
	for k, g := range r.Overrides {
		if g == name {
			delete(r.Overrides, k)
		}
	}
	r.Epoch++
	r.points = nil
	return nil
}

// MoveKey pins key to the named group and bumps the epoch. This is the
// ring-side record of a live migration cutover.
func (r *Ring) MoveKey(key, group string) error {
	if _, ok := r.Group(group); !ok {
		return fmt.Errorf("shard: no group %q", group)
	}
	if r.Overrides == nil {
		r.Overrides = make(map[string]string)
	}
	r.Overrides[key] = group
	r.Epoch++
	return nil
}

// Adopt replaces this ring's state with other's when other is strictly
// newer (higher epoch). Routers and replicas use it to absorb ring
// updates without ever going backwards. Reports whether it adopted.
func (r *Ring) Adopt(other *Ring) bool {
	if other == nil || other.Epoch <= r.Epoch {
		return false
	}
	*r = *other.Clone()
	return true
}

// Clone returns a deep copy sharing no mutable state with the original.
func (r *Ring) Clone() *Ring {
	c := &Ring{Seed: r.Seed, VNodes: r.VNodes, Epoch: r.Epoch}
	for _, g := range r.Groups {
		c.Groups = append(c.Groups, g.Clone())
	}
	if r.Overrides != nil {
		c.Overrides = make(map[string]string, len(r.Overrides))
		for k, v := range r.Overrides {
			c.Overrides[k] = v
		}
	}
	return c
}

// Spread counts how many of the given keys land on each group — the
// balance view -inspect prints and the rebalance-bound tests assert on.
func (r *Ring) Spread(keys []string) map[string]int {
	out := make(map[string]int, len(r.Groups))
	for _, g := range r.Groups {
		out[g.Name] = 0
	}
	for _, k := range keys {
		out[r.Lookup(k)]++
	}
	return out
}

// Marshal encodes the ring's identity (seed, vnodes, epoch, groups,
// overrides — not the derived points) with gob.
func (r *Ring) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("shard: encode ring: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a ring previously encoded with Marshal. The derived
// points rebuild on first lookup, so placement is identical to the
// encoded ring's.
func Unmarshal(data []byte) (*Ring, error) {
	var r Ring
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&r); err != nil {
		return nil, fmt.Errorf("shard: decode ring: %w", err)
	}
	if r.VNodes <= 0 {
		return nil, fmt.Errorf("shard: decoded ring has vnodes %d", r.VNodes)
	}
	return &r, nil
}

// Keys generates n keys "prefix0" … "prefix<n-1>" — the fixed keyspaces
// the demos, experiments, and tests place on rings.
func Keys(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = prefix + strconv.Itoa(i)
	}
	return out
}
