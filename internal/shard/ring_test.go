package shard

import (
	"fmt"
	"reflect"
	"testing"
)

func testGroups(n int) []Group {
	var gs []Group
	for i := 0; i < n; i++ {
		gs = append(gs, Group{
			Name: fmt.Sprintf("g%d", i),
			DMs: []string{
				fmt.Sprintf("g%d-dm0", i),
				fmt.Sprintf("g%d-dm1", i),
				fmt.Sprintf("g%d-dm2", i),
			},
		})
	}
	return gs
}

func mustRing(t *testing.T, seed int64, vnodes, groups int) *Ring {
	t.Helper()
	r, err := New(seed, vnodes, testGroups(groups))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

// Same seed ⇒ identical placement, independently of construction order
// or process. Different seed ⇒ (almost surely) different placement.
func TestRingDeterminism(t *testing.T) {
	keys := Keys("k", 512)
	cases := []struct {
		name   string
		seed   int64
		vnodes int
		groups int
	}{
		{"small", 1, 16, 2},
		{"medium", 42, 64, 4},
		{"large", -7, 128, 8},
		{"one-group", 99, 64, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := mustRing(t, tc.seed, tc.vnodes, tc.groups)
			b := mustRing(t, tc.seed, tc.vnodes, tc.groups)
			for _, k := range keys {
				if ga, gb := a.Lookup(k), b.Lookup(k); ga != gb {
					t.Fatalf("key %q: placements diverge (%q vs %q)", k, ga, gb)
				}
			}
			if tc.groups > 1 {
				spread := a.Spread(keys)
				for g, n := range spread {
					if n == 0 {
						t.Errorf("group %q got zero of %d keys: %v", g, len(keys), spread)
					}
				}
			}
		})
	}

	a := mustRing(t, 1, 64, 4)
	b := mustRing(t, 2, 64, 4)
	diff := 0
	for _, k := range keys {
		if a.Lookup(k) != b.Lookup(k) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatalf("seeds 1 and 2 produced identical placement of %d keys", len(keys))
	}
}

// Adding one group to N moves at most ~(1/(N+1) + ε) of keys, and every
// key that moved went TO the new group — consistent hashing's whole point.
func TestRingRebalanceBound(t *testing.T) {
	keys := Keys("k", 2048)
	for _, n := range []int{2, 3, 4, 7} {
		t.Run(fmt.Sprintf("groups=%d", n), func(t *testing.T) {
			before := mustRing(t, 5, 64, n)
			after := before.Clone()
			extra := Group{Name: "extra", DMs: []string{"extra-dm0", "extra-dm1", "extra-dm2"}}
			if err := after.AddGroup(extra); err != nil {
				t.Fatalf("AddGroup: %v", err)
			}
			if after.Epoch != before.Epoch+1 {
				t.Fatalf("epoch %d, want %d", after.Epoch, before.Epoch+1)
			}
			moved := 0
			for _, k := range keys {
				was, is := before.Lookup(k), after.Lookup(k)
				if was == is {
					continue
				}
				if is != "extra" {
					t.Fatalf("key %q moved %q->%q, not to the new group", k, was, is)
				}
				moved++
			}
			// Expect ~1/(n+1); allow ε = 50% relative slack for vnode
			// placement variance at 64 vnodes.
			frac := float64(moved) / float64(len(keys))
			bound := 1.0/float64(n+1)*1.5 + 0.01
			if frac > bound {
				t.Fatalf("adding 1 group to %d moved %.1f%% of keys (bound %.1f%%)",
					n, frac*100, bound*100)
			}
			if moved == 0 {
				t.Fatalf("adding a group moved zero keys")
			}
		})
	}
}

// Gob round-trip preserves placement exactly: the derived points rebuild
// from the marshaled identity.
func TestRingGobRoundTrip(t *testing.T) {
	keys := Keys("k", 256)
	r := mustRing(t, 11, 64, 4)
	if err := r.MoveKey("k3", "g2"); err != nil {
		t.Fatalf("MoveKey: %v", err)
	}
	data, err := r.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Epoch != r.Epoch || got.Seed != r.Seed || got.VNodes != r.VNodes {
		t.Fatalf("identity changed: got %+v want %+v", got, r)
	}
	for _, k := range keys {
		if a, b := r.Lookup(k), got.Lookup(k); a != b {
			t.Fatalf("key %q: decoded ring places at %q, original at %q", k, b, a)
		}
	}
	// Second round-trip is byte-stable (no derived state leaks into the
	// encoding).
	data2, err := got.Marshal()
	if err != nil {
		t.Fatalf("Marshal twice: %v", err)
	}
	r2, err := Unmarshal(data2)
	if err != nil {
		t.Fatalf("Unmarshal twice: %v", err)
	}
	for _, k := range keys {
		if a, b := r.Lookup(k), r2.Lookup(k); a != b {
			t.Fatalf("key %q: second round-trip diverged", k)
		}
	}
}

func TestRingMoveKeyAndAdopt(t *testing.T) {
	r := mustRing(t, 3, 64, 3)
	key := "k0"
	home := r.Lookup(key)
	var target string
	for _, g := range r.GroupNames() {
		if g != home {
			target = g
			break
		}
	}
	e0 := r.Epoch
	if err := r.MoveKey(key, target); err != nil {
		t.Fatalf("MoveKey: %v", err)
	}
	if got := r.Lookup(key); got != target {
		t.Fatalf("after MoveKey, Lookup = %q want %q", got, target)
	}
	if r.Epoch != e0+1 {
		t.Fatalf("epoch %d want %d", r.Epoch, e0+1)
	}
	if err := r.MoveKey(key, "nope"); err == nil {
		t.Fatalf("MoveKey to unknown group succeeded")
	}

	stale := mustRing(t, 3, 64, 3)
	if !stale.Adopt(r) {
		t.Fatalf("Adopt refused a newer ring")
	}
	if got := stale.Lookup(key); got != target {
		t.Fatalf("adopted ring places %q at %q, want %q", key, got, target)
	}
	if stale.Adopt(r) {
		t.Fatalf("Adopt accepted an equal-epoch ring")
	}
	// Adopted state is a deep copy.
	r.Overrides[key] = home
	if got := stale.Lookup(key); got != target {
		t.Fatalf("adopting shared state with the source")
	}
}

func TestRingRemoveGroup(t *testing.T) {
	r := mustRing(t, 9, 64, 3)
	if err := r.MoveKey("pinned", "g1"); err != nil {
		t.Fatalf("MoveKey: %v", err)
	}
	if err := r.RemoveGroup("g1"); err != nil {
		t.Fatalf("RemoveGroup: %v", err)
	}
	if got := r.Lookup("pinned"); got == "g1" || got == "" {
		t.Fatalf("key pinned to removed group resolved to %q", got)
	}
	for _, k := range Keys("k", 256) {
		if g := r.Lookup(k); g == "g1" || g == "" {
			t.Fatalf("key %q resolved to %q after removal", k, g)
		}
	}
	if err := r.RemoveGroup("g1"); err == nil {
		t.Fatalf("removing a missing group succeeded")
	}
}

func TestRingValidation(t *testing.T) {
	cases := []struct {
		name   string
		vnodes int
		groups []Group
	}{
		{"zero-vnodes", 0, testGroups(2)},
		{"dup-group", 8, []Group{{Name: "g", DMs: []string{"a"}}, {Name: "g", DMs: []string{"b"}}}},
		{"empty-name", 8, []Group{{Name: "", DMs: []string{"a"}}}},
		{"no-dms", 8, []Group{{Name: "g", DMs: nil}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(1, tc.vnodes, tc.groups); err == nil {
				t.Fatalf("New accepted invalid input")
			}
		})
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want []Group
		err  bool
	}{
		{
			name: "two-groups",
			spec: "g0=dm0:dm1:dm2,g1=dm3:dm4:dm5",
			want: []Group{
				{Name: "g0", DMs: []string{"dm0", "dm1", "dm2"}},
				{Name: "g1", DMs: []string{"dm3", "dm4", "dm5"}},
			},
		},
		{
			name: "spaces",
			spec: " a = x : y , b = z ",
			want: []Group{
				{Name: "a", DMs: []string{"x", "y"}},
				{Name: "b", DMs: []string{"z"}},
			},
		},
		{name: "empty", spec: "  ", err: true},
		{name: "no-equals", spec: "g0", err: true},
		{name: "no-dms", spec: "g0=", err: true},
		{name: "dup", spec: "g0=a,g0=b", err: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseSpec(tc.spec)
			if tc.err {
				if err == nil {
					t.Fatalf("ParseSpec(%q) succeeded: %v", tc.spec, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
			}
			round, err := ParseSpec(FormatSpec(got))
			if err != nil {
				t.Fatalf("reparse FormatSpec: %v", err)
			}
			if len(round) != len(got) {
				t.Fatalf("FormatSpec round-trip lost groups")
			}
		})
	}
}
