package quorum

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("d%d", i)
	}
	return out
}

func TestSetBasics(t *testing.T) {
	s := NewSet("b", "a")
	if !s.Contains("a") || s.Contains("c") {
		t.Error("Contains broken")
	}
	if got := s.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Names = %v", got)
	}
	if s.String() != "{a,b}" {
		t.Errorf("String = %q", s.String())
	}
	c := s.Clone()
	c["z"] = true
	if s.Contains("z") {
		t.Error("Clone must not alias")
	}
	if !s.Intersects(NewSet("b", "q")) || s.Intersects(NewSet("q")) {
		t.Error("Intersects broken")
	}
	if !s.SubsetOf(map[string]bool{"a": true, "b": true, "c": true}) {
		t.Error("SubsetOf broken")
	}
	if s.SubsetOf(map[string]bool{"a": true}) {
		t.Error("SubsetOf must require every member")
	}
}

func TestLegal(t *testing.T) {
	legal := Config{R: []Set{NewSet("a")}, W: []Set{NewSet("a", "b")}}
	if !legal.Legal() {
		t.Error("intersecting config is legal")
	}
	illegal := Config{R: []Set{NewSet("a")}, W: []Set{NewSet("b")}}
	if illegal.Legal() {
		t.Error("disjoint quorums are illegal")
	}
	if (Config{}).Legal() {
		t.Error("empty config is illegal")
	}
	if (Config{R: []Set{NewSet("a")}}).Legal() {
		t.Error("config without write-quorums is illegal")
	}
}

func TestStandardStrategiesLegal(t *testing.T) {
	for n := 1; n <= 8; n++ {
		dms := names(n)
		for label, cfg := range map[string]Config{
			"read-one/write-all": ReadOneWriteAll(dms),
			"majority":           Majority(dms),
			"read-all/write-one": ReadAllWriteOne(dms),
		} {
			if !cfg.Legal() {
				t.Errorf("%s over %d DMs not legal", label, n)
			}
			if err := cfg.Validate(dms); err != nil {
				t.Errorf("%s over %d DMs: %v", label, n, err)
			}
		}
	}
}

func TestMajorityQuorumSizes(t *testing.T) {
	for n := 1; n <= 7; n++ {
		cfg := Majority(names(n))
		want := n/2 + 1
		if cfg.MinReadQuorumSize() != want || cfg.MinWriteQuorumSize() != want {
			t.Errorf("n=%d: min sizes %d/%d, want %d", n, cfg.MinReadQuorumSize(), cfg.MinWriteQuorumSize(), want)
		}
	}
}

func TestVotingRejectsBadThresholds(t *testing.T) {
	votes := map[string]int{"a": 1, "b": 1, "c": 1}
	if _, err := Voting(votes, 1, 1); err == nil {
		t.Error("rq+wq <= total must fail")
	}
	if _, err := Voting(votes, 3, 1); err == nil {
		t.Error("2wq <= total must fail (write/write intersection)")
	}
	if _, err := Voting(map[string]int{"a": -1}, 1, 1); err == nil {
		t.Error("negative votes must fail")
	}
}

func TestVotingGeneralizesClassicSchemes(t *testing.T) {
	dms := names(3)
	votes := map[string]int{"d0": 1, "d1": 1, "d2": 1}
	// rq=1, wq=3 == read-one/write-all.
	rowa, err := Voting(votes, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rowa.MinReadQuorumSize() != 1 || rowa.MinWriteQuorumSize() != 3 {
		t.Errorf("rowa sizes: %d/%d", rowa.MinReadQuorumSize(), rowa.MinWriteQuorumSize())
	}
	// rq=2, wq=2 == majority.
	maj, err := Voting(votes, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(maj.R) != len(Majority(dms).R) {
		t.Errorf("majority voting has %d read-quorums, want %d", len(maj.R), len(Majority(dms).R))
	}
}

func TestVotingWeighted(t *testing.T) {
	// A replica with all the weight becomes a mandatory member.
	cfg, err := Voting(map[string]int{"big": 3, "s1": 1, "s2": 1}, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range append(append([]Set{}, cfg.R...), cfg.W...) {
		if !q.Contains("big") && len(q) < 2 {
			t.Errorf("quorum %v reaches 3 votes without big?", q)
		}
	}
	if !cfg.Legal() {
		t.Error("weighted config must be legal")
	}
}

// Property: every Voting configuration with valid thresholds is legal, its
// quorums are minimal, and write-quorums pairwise intersect.
func TestVotingPropertyLegalAndMinimal(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		votes := map[string]int{}
		total := 0
		for i := 0; i < n; i++ {
			v := 1 + rng.Intn(3)
			votes[fmt.Sprintf("d%d", i)] = v
			total += v
		}
		wq := total/2 + 1 + rng.Intn(total-total/2)
		if wq > total {
			wq = total
		}
		rq := total - wq + 1 + rng.Intn(wq)
		if rq > total {
			rq = total
		}
		cfg, err := Voting(votes, rq, wq)
		if err != nil {
			return true // thresholds rejected; nothing to check
		}
		if !cfg.Legal() {
			return false
		}
		// Write/write intersection (Gifford's second constraint).
		for _, w1 := range cfg.W {
			for _, w2 := range cfg.W {
				if !w1.Intersects(w2) {
					return false
				}
			}
		}
		// Minimality: removing any member of a quorum drops below the
		// threshold.
		check := func(qs []Set, threshold int) bool {
			for _, q := range qs {
				sum := 0
				for m := range q {
					sum += votes[m]
				}
				if sum < threshold {
					return false
				}
				for m := range q {
					if sum-votes[m] >= threshold {
						return false
					}
				}
			}
			return true
		}
		return check(cfg.R, rq) && check(cfg.W, wq)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid(t *testing.T) {
	dms := names(6)
	cfg, err := Grid(dms, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Legal() {
		t.Error("grid config must be legal")
	}
	if len(cfg.R) != 3 {
		t.Errorf("grid should have one read-quorum per column, got %d", len(cfg.R))
	}
	// Grid reads are cheaper than majority reads for larger n.
	if cfg.MinReadQuorumSize() != 2 {
		t.Errorf("grid read quorum size = %d", cfg.MinReadQuorumSize())
	}
	if _, err := Grid(dms, 2, 2); err == nil {
		t.Error("mismatched grid dims must fail")
	}
}

func TestHasQuorum(t *testing.T) {
	cfg := Majority(names(3))
	if cfg.HasReadQuorum(map[string]bool{"d0": true}) {
		t.Error("one of three is not a majority")
	}
	if !cfg.HasReadQuorum(map[string]bool{"d0": true, "d2": true}) {
		t.Error("two of three is a majority")
	}
	if !cfg.HasWriteQuorum(map[string]bool{"d0": true, "d1": true, "d2": true}) {
		t.Error("all three contain a write-quorum")
	}
}

func TestValidateRejectsForeignMembers(t *testing.T) {
	cfg := Config{R: []Set{NewSet("zz")}, W: []Set{NewSet("zz")}}
	if err := cfg.Validate(names(3)); err == nil {
		t.Error("foreign member must fail validation")
	}
}

func TestExactAvailabilityKnownValues(t *testing.T) {
	dms := names(3)
	p := 0.9
	up := UniformUp(dms, p)
	// Read-one/write-all: read needs any replica up, write needs all.
	a := ExactAvailability(ReadOneWriteAll(dms), up)
	wantRead := 1 - math.Pow(1-p, 3)
	wantWrite := math.Pow(p, 3)
	if math.Abs(a.Read-wantRead) > 1e-9 || math.Abs(a.Write-wantWrite) > 1e-9 {
		t.Errorf("rowa availability = %+v, want %.6f/%.6f", a, wantRead, wantWrite)
	}
	// Majority of 3: at least 2 up.
	m := ExactAvailability(Majority(dms), up)
	wantMaj := math.Pow(p, 3) + 3*math.Pow(p, 2)*(1-p)
	if math.Abs(m.Read-wantMaj) > 1e-9 || math.Abs(m.Write-wantMaj) > 1e-9 {
		t.Errorf("majority availability = %+v, want %.6f", m, wantMaj)
	}
}

func TestMonteCarloMatchesExact(t *testing.T) {
	dms := names(5)
	cfg := Majority(dms)
	up := UniformUp(dms, 0.8)
	exact := ExactAvailability(cfg, up)
	mc := MonteCarloAvailability(cfg, up, 200000, rand.New(rand.NewSource(1)))
	if math.Abs(exact.Read-mc.Read) > 0.01 || math.Abs(exact.Write-mc.Write) > 0.01 {
		t.Errorf("monte carlo %+v vs exact %+v", mc, exact)
	}
}

// Property: for any legal configuration, read availability plus write
// availability of the *same* live set never exceeds... rather: if a live
// set has a write quorum, adding replicas preserves it (monotonicity).
func TestAvailabilityMonotoneInUpProbability(t *testing.T) {
	dms := names(4)
	cfgs := []Config{ReadOneWriteAll(dms), Majority(dms), ReadAllWriteOne(dms)}
	for _, cfg := range cfgs {
		prev := Availability{}
		for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
			a := ExactAvailability(cfg, UniformUp(dms, p))
			if a.Read+1e-12 < prev.Read || a.Write+1e-12 < prev.Write {
				t.Errorf("availability not monotone at p=%v: %+v < %+v", p, a, prev)
			}
			prev = a
		}
	}
}

func TestConfigCloneIsDeep(t *testing.T) {
	cfg := Majority(names(3))
	clone := cfg.Clone()
	clone.R[0]["zzz"] = true
	if cfg.R[0].Contains("zzz") {
		t.Error("Clone must deep-copy quorums")
	}
}

func TestConfigString(t *testing.T) {
	cfg := Config{R: []Set{NewSet("a")}, W: []Set{NewSet("a", "b")}}
	if got := cfg.String(); got != "r:[{a}] w:[{a,b}]" {
		t.Errorf("String = %q", got)
	}
}
