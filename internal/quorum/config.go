// Package quorum implements quorum configurations in the generalized form
// the paper adopts from Barbara & Garcia-Molina: a configuration is a pair
// (r, w) of sets of quorums, each quorum a set of DM names, and a legal
// configuration is one in which every read-quorum intersects every
// write-quorum. Gifford's original vote-based scheme is provided as a
// constructor, and the package includes exact and Monte-Carlo availability
// analysis used by the benchmark harness.
package quorum

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a quorum: a set of DM names.
type Set map[string]bool

// NewSet returns a Set containing the given names.
func NewSet(names ...string) Set {
	s := make(Set, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

// Contains reports whether s contains name.
func (s Set) Contains(name string) bool { return s[name] }

// SubsetOf reports whether every member of s is in t, where t is given as a
// membership set.
func (s Set) SubsetOf(t map[string]bool) bool {
	for n := range s {
		if !t[n] {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share a member.
func (s Set) Intersects(t Set) bool {
	for n := range s {
		if t[n] {
			return true
		}
	}
	return false
}

// Names returns the members of s, sorted.
func (s Set) Names() []string {
	out := make([]string, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for n := range s {
		out[n] = true
	}
	return out
}

// String renders the set as "{a,b,c}".
func (s Set) String() string { return "{" + strings.Join(s.Names(), ",") + "}" }

// Config is a configuration: a set of read-quorums and a set of
// write-quorums.
type Config struct {
	R []Set
	W []Set
}

// Legal reports whether the configuration is legal: every read-quorum has a
// non-empty intersection with every write-quorum.
func (c Config) Legal() bool {
	if len(c.R) == 0 || len(c.W) == 0 {
		return false
	}
	for _, r := range c.R {
		for _, w := range c.W {
			if !r.Intersects(w) {
				return false
			}
		}
	}
	return true
}

// HasReadQuorum reports whether some read-quorum is a subset of the set of
// names marked true in have.
func (c Config) HasReadQuorum(have map[string]bool) bool {
	for _, r := range c.R {
		if r.SubsetOf(have) {
			return true
		}
	}
	return false
}

// HasWriteQuorum reports whether some write-quorum is a subset of have.
func (c Config) HasWriteQuorum(have map[string]bool) bool {
	for _, w := range c.W {
		if w.SubsetOf(have) {
			return true
		}
	}
	return false
}

// Members returns every DM name mentioned by any quorum, sorted.
func (c Config) Members() []string {
	set := map[string]bool{}
	for _, q := range c.R {
		for n := range q {
			set[n] = true
		}
	}
	for _, q := range c.W {
		for n := range q {
			set[n] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of c.
func (c Config) Clone() Config {
	out := Config{R: make([]Set, len(c.R)), W: make([]Set, len(c.W))}
	for i, q := range c.R {
		out.R[i] = q.Clone()
	}
	for i, q := range c.W {
		out.W[i] = q.Clone()
	}
	return out
}

// String renders the configuration.
func (c Config) String() string {
	var b strings.Builder
	b.WriteString("r:[")
	for i, q := range c.R {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(q.String())
	}
	b.WriteString("] w:[")
	for i, q := range c.W {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(q.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Validate returns a descriptive error if c is not a legal configuration
// over exactly the given DM names.
func (c Config) Validate(dms []string) error {
	if !c.Legal() {
		return fmt.Errorf("quorum: configuration is not legal: %v", c)
	}
	allowed := map[string]bool{}
	for _, d := range dms {
		allowed[d] = true
	}
	for _, q := range append(append([]Set{}, c.R...), c.W...) {
		for n := range q {
			if !allowed[n] {
				return fmt.Errorf("quorum: quorum member %q is not a DM of this item", n)
			}
		}
	}
	return nil
}
