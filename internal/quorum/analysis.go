package quorum

import "math/rand"

// Availability is the probability that a read (respectively write) quorum
// of live DMs exists.
type Availability struct {
	Read  float64
	Write float64
}

// ExactAvailability computes read/write availability exactly by enumerating
// all up/down patterns of the configuration's members, assuming each DM is
// up independently with probability up[name]. Exponential in the number of
// members; fine for n ≤ ~20.
func ExactAvailability(cfg Config, up map[string]float64) Availability {
	members := cfg.Members()
	n := len(members)
	var avail Availability
	for mask := 0; mask < 1<<n; mask++ {
		p := 1.0
		live := map[string]bool{}
		for i, m := range members {
			if mask&(1<<i) != 0 {
				p *= up[m]
				live[m] = true
			} else {
				p *= 1 - up[m]
			}
		}
		if p == 0 {
			continue
		}
		if cfg.HasReadQuorum(live) {
			avail.Read += p
		}
		if cfg.HasWriteQuorum(live) {
			avail.Write += p
		}
	}
	return avail
}

// UniformUp returns an up-probability map assigning p to every name.
func UniformUp(names []string, p float64) map[string]float64 {
	m := make(map[string]float64, len(names))
	for _, n := range names {
		m[n] = p
	}
	return m
}

// MonteCarloAvailability estimates availability by sampling trials up/down
// patterns with the given rng. Used to cross-check ExactAvailability and
// for configurations too large to enumerate.
func MonteCarloAvailability(cfg Config, up map[string]float64, trials int, rng *rand.Rand) Availability {
	members := cfg.Members()
	var readOK, writeOK int
	live := map[string]bool{}
	for t := 0; t < trials; t++ {
		for k := range live {
			delete(live, k)
		}
		for _, m := range members {
			if rng.Float64() < up[m] {
				live[m] = true
			}
		}
		if cfg.HasReadQuorum(live) {
			readOK++
		}
		if cfg.HasWriteQuorum(live) {
			writeOK++
		}
	}
	return Availability{
		Read:  float64(readOK) / float64(trials),
		Write: float64(writeOK) / float64(trials),
	}
}

// MinReadQuorumSize returns the size of the smallest read-quorum, the
// number of replicas a read must contact in the best case.
func (c Config) MinReadQuorumSize() int { return minSize(c.R) }

// MinWriteQuorumSize returns the size of the smallest write-quorum.
func (c Config) MinWriteQuorumSize() int { return minSize(c.W) }

func minSize(qs []Set) int {
	if len(qs) == 0 {
		return 0
	}
	min := len(qs[0])
	for _, q := range qs[1:] {
		if len(q) < min {
			min = len(q)
		}
	}
	return min
}
