package quorum

import (
	"fmt"
	"sort"
)

// Voting builds a configuration from Gifford's weighted-voting scheme: each
// DM is assigned a number of votes, and (rq, wq) are the vote thresholds
// for read and write quorums. The constraint rq + wq > total guarantees
// legality (read/write intersection); Gifford additionally requires
// 2*wq > total so that two write-quorums intersect, which the version-number
// scheme needs to keep version numbers monotone. The returned configuration
// contains the *minimal* quorums: subsets of DMs whose votes meet the
// threshold and that are minimal under set inclusion.
func Voting(votes map[string]int, rq, wq int) (Config, error) {
	total := 0
	names := make([]string, 0, len(votes))
	for n, v := range votes {
		if v < 0 {
			return Config{}, fmt.Errorf("quorum: negative votes for %s", n)
		}
		total += v
		names = append(names, n)
	}
	sort.Strings(names)
	if rq+wq <= total {
		return Config{}, fmt.Errorf("quorum: read-quorum %d + write-quorum %d must exceed total votes %d", rq, wq, total)
	}
	if 2*wq <= total {
		return Config{}, fmt.Errorf("quorum: write-quorum %d must exceed half of total votes %d", wq, total)
	}
	// The intersection constraints alone don't force satisfiability: with
	// few (or zero) total votes a threshold can exceed what any subset
	// carries, leaving no quorums at all.
	if rq > total || wq > total {
		return Config{}, fmt.Errorf("quorum: thresholds rq=%d wq=%d unsatisfiable with %d total votes", rq, wq, total)
	}
	cfg := Config{
		R: minimalQuorums(names, votes, rq),
		W: minimalQuorums(names, votes, wq),
	}
	if !cfg.Legal() {
		return Config{}, fmt.Errorf("quorum: internal error: voting construction produced illegal configuration")
	}
	return cfg, nil
}

// minimalQuorums enumerates the subsets of names whose votes sum to at
// least threshold and that are minimal under inclusion. Exponential in
// len(names); intended for the small replica counts (≤ ~12) used here.
func minimalQuorums(names []string, votes map[string]int, threshold int) []Set {
	var result []Set
	n := len(names)
	for mask := 1; mask < 1<<n; mask++ {
		sum := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sum += votes[names[i]]
			}
		}
		if sum < threshold {
			continue
		}
		// Minimal: removing any member drops below threshold.
		minimal := true
		for i := 0; i < n && minimal; i++ {
			if mask&(1<<i) != 0 && sum-votes[names[i]] >= threshold {
				minimal = false
			}
		}
		if !minimal {
			continue
		}
		q := Set{}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				q[names[i]] = true
			}
		}
		result = append(result, q)
	}
	return result
}

// ReadOneWriteAll returns the configuration whose read-quorums are the
// singletons and whose single write-quorum is all DMs.
func ReadOneWriteAll(dms []string) Config {
	cfg := Config{W: []Set{NewSet(dms...)}}
	for _, d := range dms {
		cfg.R = append(cfg.R, NewSet(d))
	}
	return cfg
}

// Majority returns the configuration whose read- and write-quorums are the
// minimal majorities (⌊n/2⌋+1 members) of dms.
func Majority(dms []string) Config {
	k := len(dms)/2 + 1
	qs := subsetsOfSize(dms, k)
	return Config{R: qs, W: cloneSets(qs)}
}

// ReadAllWriteOne returns the "inverse" configuration: the single
// read-quorum is all DMs and the write-quorums are the singletons. Legal,
// but note it does not satisfy Gifford's write/write intersection
// constraint; it is included for the availability ablation.
func ReadAllWriteOne(dms []string) Config {
	cfg := Config{R: []Set{NewSet(dms...)}}
	for _, d := range dms {
		cfg.W = append(cfg.W, NewSet(d))
	}
	return cfg
}

// Grid arranges dms (row-major) into a rows×cols grid: read-quorums are the
// full columns and write-quorums are a full column plus one member from
// every column. rows*cols must equal len(dms).
func Grid(dms []string, rows, cols int) (Config, error) {
	if rows*cols != len(dms) {
		return Config{}, fmt.Errorf("quorum: grid %dx%d does not fit %d DMs", rows, cols, len(dms))
	}
	cell := func(r, c int) string { return dms[r*cols+c] }
	var cfg Config
	for c := 0; c < cols; c++ {
		col := Set{}
		for r := 0; r < rows; r++ {
			col[cell(r, c)] = true
		}
		cfg.R = append(cfg.R, col)
	}
	// Write-quorums: one full column plus one representative per column.
	// Enumerate representatives row choices per column (rows^cols sets per
	// column choice); keep it bounded by using each row uniformly.
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			w := Set{}
			for rr := 0; rr < rows; rr++ {
				w[cell(rr, c)] = true
			}
			for cc := 0; cc < cols; cc++ {
				w[cell(r, cc)] = true
			}
			cfg.W = append(cfg.W, w)
		}
	}
	if !cfg.Legal() {
		return Config{}, fmt.Errorf("quorum: internal error: grid construction produced illegal configuration")
	}
	return cfg, nil
}

// subsetsOfSize returns all subsets of names with exactly k members.
func subsetsOfSize(names []string, k int) []Set {
	var out []Set
	n := len(names)
	var rec func(start int, cur []string)
	rec = func(start int, cur []string) {
		if len(cur) == k {
			out = append(out, NewSet(cur...))
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, names[i]))
		}
	}
	rec(0, nil)
	return out
}

func cloneSets(qs []Set) []Set {
	out := make([]Set, len(qs))
	for i, q := range qs {
		out[i] = q.Clone()
	}
	return out
}
