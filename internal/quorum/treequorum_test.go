package quorum

import (
	"testing"
	"testing/quick"
)

func TestTreeQuorumLegal(t *testing.T) {
	for _, n := range []int{1, 3, 7, 15, 13} {
		cfg, err := TreeQuorum(names(n), 2)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !cfg.Legal() {
			t.Errorf("n=%d: tree quorum config not legal", n)
		}
		if err := cfg.Validate(names(n)); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestTreeQuorumRootReadsCheap(t *testing.T) {
	cfg, err := TreeQuorum(names(7), 2)
	if err != nil {
		t.Fatal(err)
	}
	// In the failure-free case a read needs only the root.
	if cfg.MinReadQuorumSize() != 1 {
		t.Errorf("min read quorum = %d, want 1 (the root)", cfg.MinReadQuorumSize())
	}
	// Writes pay a root-to-majority path: strictly more than one replica.
	if cfg.MinWriteQuorumSize() < 3 {
		t.Errorf("min write quorum = %d, want ≥ 3", cfg.MinWriteQuorumSize())
	}
}

func TestTreeQuorumDegradedReads(t *testing.T) {
	dms := names(7)
	cfg, err := TreeQuorum(dms, 2)
	if err != nil {
		t.Fatal(err)
	}
	// With the root (d0) down, reads must still find a quorum among the
	// remaining replicas.
	live := map[string]bool{}
	for _, d := range dms[1:] {
		live[d] = true
	}
	if !cfg.HasReadQuorum(live) {
		t.Error("tree quorum reads must survive root failure")
	}
	// Writes, too — majority of children with their subtree majorities —
	// except the root is mandatory in every write quorum.
	if cfg.HasWriteQuorum(live) {
		t.Log("note: root participates in every write quorum of this construction")
	}
}

func TestTreeQuorumAvailabilityBeatsROWAWrites(t *testing.T) {
	// A binary tree is degenerate (a majority of 2 children is both, so a
	// write quorum is the whole tree); the protocol shines on ternary
	// trees, where a write needs the root plus 2-of-3 subtrees.
	dms := names(13) // complete ternary tree: 1 + 3 + 9
	tq, err := TreeQuorum(dms, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tq.MinWriteQuorumSize() >= len(dms) {
		t.Fatalf("ternary tree write quorum should not need every replica (got %d)", tq.MinWriteQuorumSize())
	}
	up := UniformUp(dms, 0.9)
	tqa := ExactAvailability(tq, up)
	rowa := ExactAvailability(ReadOneWriteAll(dms), up)
	if tqa.Write <= rowa.Write {
		t.Errorf("tree quorum write availability %.4f should beat read-one/write-all %.4f", tqa.Write, rowa.Write)
	}
}

func TestTreeQuorumRejectsBadInput(t *testing.T) {
	if _, err := TreeQuorum(nil, 2); err == nil {
		t.Error("no DMs must fail")
	}
	if _, err := TreeQuorum(names(3), 1); err == nil {
		t.Error("branching < 2 must fail")
	}
}

// Property: tree quorum configs are legal for any size/branching in range.
func TestTreeQuorumPropertyLegal(t *testing.T) {
	prop := func(nRaw, kRaw uint8) bool {
		n := 1 + int(nRaw)%12
		k := 2 + int(kRaw)%3
		cfg, err := TreeQuorum(names(n), k)
		if err != nil {
			return false
		}
		return cfg.Legal()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDedupSetsMinimality(t *testing.T) {
	qs := []Set{NewSet("a", "b"), NewSet("a"), NewSet("a", "b", "c"), NewSet("a")}
	out := dedupSets(qs)
	if len(out) != 1 || !out[0].Contains("a") || len(out[0]) != 1 {
		t.Errorf("dedup = %v", out)
	}
}

func TestUniformLoad(t *testing.T) {
	dms := names(4)
	rowa := UniformLoad(ReadOneWriteAll(dms))
	if rowa.Read != 0.25 {
		t.Errorf("read-one load = %v, want 0.25", rowa.Read)
	}
	if rowa.Write != 1 {
		t.Errorf("write-all load = %v, want 1", rowa.Write)
	}
	maj := UniformLoad(Majority(names(3)))
	// Each replica appears in 2 of the 3 minimal majorities.
	if maj.Read < 0.66 || maj.Read > 0.67 {
		t.Errorf("majority load = %v, want 2/3", maj.Read)
	}
	if got := UniformLoad(Config{}); got.Read != 0 || got.Write != 0 {
		t.Errorf("empty config load = %v", got)
	}
}

func TestTreeQuorumWorksInCluster(t *testing.T) {
	// The strategy plugs into the same Config machinery the store uses.
	dms := names(7)
	cfg, err := TreeQuorum(dms, 2)
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{dms[0]: true}
	if !cfg.HasReadQuorum(have) {
		t.Error("root alone should satisfy a read")
	}
}
