package quorum

import (
	"fmt"
	"testing"
)

// FuzzConfig drives Voting with arbitrary vote assignments and thresholds
// and checks the invariants every accepted configuration must satisfy:
// legality (each read quorum intersects each write quorum), pairwise
// write-write intersection (the weighted-voting guarantee the version-
// number scheme depends on), threshold coverage, and agreement between
// the enumerated quorums and the Has*Quorum predicates. Rejections are
// checked too: Voting may only refuse inputs that violate its stated
// constraints.
func FuzzConfig(f *testing.F) {
	f.Add(uint8(3), uint64(1), uint8(2), uint8(2))
	f.Add(uint8(5), uint64(42), uint8(3), uint8(3))
	f.Add(uint8(4), uint64(7), uint8(5), uint8(4))
	f.Add(uint8(1), uint64(0), uint8(1), uint8(1))
	f.Add(uint8(6), uint64(99), uint8(4), uint8(6))

	f.Fuzz(func(t *testing.T, nRaw uint8, voteSeed uint64, rqRaw, wqRaw uint8) {
		// Keep the replica count small: minimalQuorums enumerates 2^n
		// subsets, and the interesting structure is already present at 6.
		n := int(nRaw)%6 + 1
		votes := map[string]int{}
		names := make([]string, n)
		total := 0
		z := voteSeed
		for i := 0; i < n; i++ {
			// splitmix64 step: decorrelated per-replica vote weights 0..4,
			// including zero-vote (witness-less) replicas.
			z += 0x9E3779B97F4A7C15
			x := z
			x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
			x = (x ^ (x >> 27)) * 0x94D049BB133111EB
			v := int((x ^ (x >> 31)) % 5)
			name := fmt.Sprintf("dm%d", i)
			names[i] = name
			votes[name] = v
			total += v
		}
		rq, wq := int(rqRaw), int(wqRaw)

		cfg, err := Voting(votes, rq, wq)
		legalInput := rq+wq > total && 2*wq > total && rq <= total && wq <= total
		if err != nil {
			if legalInput {
				t.Fatalf("Voting(%v, rq=%d, wq=%d) rejected a legal input: %v", votes, rq, wq, err)
			}
			return
		}
		if !legalInput {
			t.Fatalf("Voting(%v, rq=%d, wq=%d) accepted an input violating rq+wq>total or 2wq>total", votes, rq, wq)
		}

		if !cfg.Legal() {
			t.Fatalf("illegal config from Voting(%v, rq=%d, wq=%d): %v", votes, rq, wq, cfg)
		}
		if err := cfg.Validate(names); err != nil {
			t.Fatalf("config does not validate against its own replica set: %v", err)
		}
		for _, r := range cfg.R {
			for _, w := range cfg.W {
				if !r.Intersects(w) {
					t.Fatalf("read quorum %v misses write quorum %v", r, w)
				}
			}
		}
		for i, w1 := range cfg.W {
			for _, w2 := range cfg.W[i:] {
				if !w1.Intersects(w2) {
					t.Fatalf("write quorums %v and %v do not intersect: version numbers could fork", w1, w2)
				}
			}
		}
		sum := func(s Set) int {
			got := 0
			for dm := range s {
				got += votes[dm]
			}
			return got
		}
		for _, r := range cfg.R {
			if sum(r) < rq {
				t.Fatalf("read quorum %v carries %d votes, threshold %d", r, sum(r), rq)
			}
		}
		for _, w := range cfg.W {
			if sum(w) < wq {
				t.Fatalf("write quorum %v carries %d votes, threshold %d", w, sum(w), wq)
			}
		}
		// The predicates must agree with the enumeration: the full replica
		// set can always form both quorums, and removing any single member
		// of every write quorum must break HasWriteQuorum.
		all := map[string]bool{}
		for _, dm := range names {
			all[dm] = true
		}
		if !cfg.HasReadQuorum(all) || !cfg.HasWriteQuorum(all) {
			t.Fatalf("full replica set denied a quorum: %v", cfg)
		}
	})
}
