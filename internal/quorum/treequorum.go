package quorum

import (
	"fmt"
	"sort"
)

// TreeQuorum builds the tree quorum protocol of Agrawal & El Abbadi over
// the given DMs, arranged level-order into a complete k-ary logical tree.
// A read quorum for a subtree is either its root alone or read quorums of
// a majority of its children; a write quorum is the root together with
// write quorums of a majority of its children. In the failure-free case
// reads cost O(1) (just the root) while writes cost O(log n); under root
// failure reads degrade gracefully to deeper quorums.
//
// The paper places Gifford-style quorum consensus at the base of this
// family ("the ideas of this method underlie many of the more recent and
// sophisticated replication techniques"); TreeQuorum is provided as an
// extension strategy and is validated against the same legality predicate.
func TreeQuorum(dms []string, branching int) (Config, error) {
	if branching < 2 {
		return Config{}, fmt.Errorf("quorum: tree branching must be ≥ 2")
	}
	if len(dms) == 0 {
		return Config{}, fmt.Errorf("quorum: no DMs")
	}
	reads := treeReadQuorums(dms, 0, branching)
	writes := treeWriteQuorums(dms, 0, branching)
	cfg := Config{R: dedupSets(reads), W: dedupSets(writes)}
	if !cfg.Legal() {
		return Config{}, fmt.Errorf("quorum: internal error: tree quorum construction produced illegal configuration")
	}
	return cfg, nil
}

// children returns the level-order child indices of node i.
func childIndices(n, i, k int) []int {
	var out []int
	for c := i*k + 1; c <= i*k+k && c < n; c++ {
		out = append(out, c)
	}
	return out
}

// treeReadQuorums enumerates the read quorums of the subtree rooted at i.
func treeReadQuorums(dms []string, i, k int) []Set {
	out := []Set{NewSet(dms[i])}
	kids := childIndices(len(dms), i, k)
	if len(kids) == 0 {
		return out
	}
	perChild := make([][]Set, len(kids))
	for j, c := range kids {
		perChild[j] = treeReadQuorums(dms, c, k)
	}
	need := len(kids)/2 + 1
	out = append(out, combineMajorities(perChild, need, nil)...)
	return out
}

// treeWriteQuorums enumerates the write quorums of the subtree rooted at i.
func treeWriteQuorums(dms []string, i, k int) []Set {
	kids := childIndices(len(dms), i, k)
	if len(kids) == 0 {
		return []Set{NewSet(dms[i])}
	}
	perChild := make([][]Set, len(kids))
	for j, c := range kids {
		perChild[j] = treeWriteQuorums(dms, c, k)
	}
	need := len(kids)/2 + 1
	var out []Set
	for _, q := range combineMajorities(perChild, need, nil) {
		q[dms[i]] = true
		out = append(out, q)
	}
	return out
}

// combineMajorities enumerates unions of one quorum from each of `need`
// children chosen among perChild.
func combineMajorities(perChild [][]Set, need int, chosen []Set) []Set {
	if need == 0 {
		u := Set{}
		for _, q := range chosen {
			for m := range q {
				u[m] = true
			}
		}
		return []Set{u}
	}
	if len(perChild) < need {
		return nil
	}
	var out []Set
	// Either use the first child (each of its quorums) or skip it.
	for _, q := range perChild[0] {
		out = append(out, combineMajorities(perChild[1:], need-1, append(chosen, q))...)
	}
	out = append(out, combineMajorities(perChild[1:], need, chosen)...)
	return out
}

// dedupSets removes duplicate and non-minimal quorums.
func dedupSets(qs []Set) []Set {
	// Sort by size so minimal sets come first.
	sort.Slice(qs, func(i, j int) bool { return len(qs[i]) < len(qs[j]) })
	var out []Set
	for _, q := range qs {
		redundant := false
		for _, kept := range out {
			if kept.SubsetOf(map[string]bool(q)) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, q)
		}
	}
	return out
}

// Load summarizes the best-case access load a configuration places on its
// busiest replica, in the Naor–Wool sense approximated over minimal
// quorums: assuming operations pick uniformly among the smallest quorums,
// Load is the highest per-replica selection frequency. Lower is better;
// majority systems approach 1/2 while read-one/write-all reads approach
// 1/n.
type Load struct {
	Read  float64
	Write float64
}

// UniformLoad computes the load under the uniform-over-minimal-quorums
// strategy.
func UniformLoad(cfg Config) Load {
	return Load{Read: uniformLoad(cfg.R), Write: uniformLoad(cfg.W)}
}

func uniformLoad(qs []Set) float64 {
	if len(qs) == 0 {
		return 0
	}
	min := qs[0]
	for _, q := range qs[1:] {
		if len(q) < len(min) {
			min = q
		}
	}
	var minimal []Set
	for _, q := range qs {
		if len(q) == len(min) {
			minimal = append(minimal, q)
		}
	}
	counts := map[string]int{}
	for _, q := range minimal {
		for m := range q {
			counts[m]++
		}
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	return float64(maxCount) / float64(len(minimal))
}
