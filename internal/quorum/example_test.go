package quorum_test

import (
	"fmt"

	"repro/internal/quorum"
)

func ExampleVoting() {
	// Gifford's example shape: one strong site with 2 votes, two weak
	// sites with 1 vote each; read threshold 2, write threshold 3.
	cfg, err := quorum.Voting(map[string]int{"a": 2, "b": 1, "c": 1}, 2, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("legal:", cfg.Legal())
	fmt.Println("min read quorum:", cfg.MinReadQuorumSize())
	fmt.Println("min write quorum:", cfg.MinWriteQuorumSize())
	// Output:
	// legal: true
	// min read quorum: 1
	// min write quorum: 2
}

func ExampleMajority() {
	cfg := quorum.Majority([]string{"d1", "d2", "d3"})
	fmt.Println("read quorums:", len(cfg.R))
	fmt.Println("intersecting:", cfg.Legal())
	// Output:
	// read quorums: 3
	// intersecting: true
}

func ExampleExactAvailability() {
	dms := []string{"d1", "d2", "d3"}
	cfg := quorum.ReadOneWriteAll(dms)
	a := quorum.ExactAvailability(cfg, quorum.UniformUp(dms, 0.9))
	fmt.Printf("read %.3f write %.3f\n", a.Read, a.Write)
	// Output:
	// read 0.999 write 0.729
}

func ExampleConfig_HasReadQuorum() {
	cfg := quorum.Majority([]string{"d1", "d2", "d3"})
	live := map[string]bool{"d1": true, "d3": true}
	fmt.Println(cfg.HasReadQuorum(live))
	// Output:
	// true
}
