package quorum

import (
	"math/rand"
	"testing"
)

func BenchmarkLegalMajority7(b *testing.B) {
	cfg := Majority(names(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !cfg.Legal() {
			b.Fatal("illegal")
		}
	}
}

func BenchmarkVoting7(b *testing.B) {
	votes := map[string]int{}
	for _, n := range names(7) {
		votes[n] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Voting(votes, 4, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeQuorum13(b *testing.B) {
	dms := names(13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TreeQuorum(dms, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHasReadQuorum(b *testing.B) {
	cfg := Majority(names(7))
	have := map[string]bool{"d0": true, "d2": true, "d4": true, "d6": true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !cfg.HasReadQuorum(have) {
			b.Fatal("no quorum")
		}
	}
}

func BenchmarkExactAvailability9(b *testing.B) {
	dms := names(9)
	cfg := Majority(dms)
	up := UniformUp(dms, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactAvailability(cfg, up)
	}
}

func BenchmarkMonteCarloAvailability(b *testing.B) {
	dms := names(9)
	cfg := Majority(dms)
	up := UniformUp(dms, 0.9)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MonteCarloAvailability(cfg, up, 100, rng)
	}
}
