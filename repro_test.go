package repro

import (
	"context"
	"strings"
	"testing"
	"time"
)

func facadeSpec() Spec {
	dms := []string{"d1", "d2", "d3"}
	return Spec{
		Items: []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: Majority(dms)}},
		Top: []TxnSpec{
			Sub("u", WriteItem("w", "x", 42), ReadItem("r", "x")),
		},
	}
}

func TestRunAndCheckFacade(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sched, err := RunAndCheck(facadeSpec(), seed, 0.1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(sched) == 0 {
			t.Fatal("empty schedule")
		}
	}
}

func TestRunSerialReportsInvariantViolationsAsErrors(t *testing.T) {
	// RunSerial wires the Lemma 8 checker; a healthy system never trips it.
	b, err := BuildB(facadeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSerial(b, 1, 100000, 0.2); err != nil {
		t.Fatal(err)
	}
}

func TestBuildCAndCheckTheorem11Facade(t *testing.T) {
	spec := facadeSpec()
	spec.SequentialTMs = true
	spec.ReadAccessesPerDM = 2
	spec.WriteAccessesPerDM = 2
	c, err := BuildC(spec)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := RunSerialNoChecks(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTheorem11(c, sched); err != nil {
		t.Fatal(err)
	}
}

func TestOpenSimEndToEnd(t *testing.T) {
	dms := []string{"a", "b", "c"}
	store, net, err := OpenSim([]ClusterItem{
		{Name: "k", Initial: "v0", DMs: dms, Config: ReadOneWriteAll(dms)},
	}, 50*time.Microsecond, 500*time.Microsecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		store.Close()
		net.Close()
	}()
	ctx := context.Background()
	if err := store.Run(ctx, func(tx *Txn) error {
		return tx.Write(ctx, "k", "v1")
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "k")
		if err != nil {
			return err
		}
		if v != "v1" {
			t.Errorf("read %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderTreeFacade(t *testing.T) {
	b, err := BuildB(facadeSpec())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTree(b.Tree)
	if !strings.Contains(out, "write-TM") || !strings.Contains(out, "read-TM") {
		t.Errorf("render missing TMs:\n%s", out)
	}
}

func TestVotingFacade(t *testing.T) {
	cfg, err := Voting(map[string]int{"a": 1, "b": 1, "c": 1}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Legal() {
		t.Error("voting config must be legal")
	}
}

func TestReconfigurableFacade(t *testing.T) {
	spec := facadeSpec()
	dms := spec.Items[0].DMs
	rs := ReconfigSpec{
		Core:             spec,
		NewConfigs:       map[string][]Config{"x": {ReadOneWriteAll(dms)}},
		ReconfigsPerUser: 1,
	}
	b, err := BuildReconfigurable(rs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Sys == nil || b.Tree == nil {
		t.Fatal("incomplete system")
	}
}
