// Quickstart: open a simulated replicated store and run a nested
// transaction against it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// Five replicas of one item, majority quorums.
	dms := []string{"dm0", "dm1", "dm2", "dm3", "dm4"}
	store, net, err := repro.OpenSim([]repro.ClusterItem{
		{Name: "greeting", Initial: "hello", DMs: dms, Config: repro.Majority(dms)},
	}, 100*time.Microsecond, time.Millisecond, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		store.Close()
		net.Close()
	}()

	ctx := context.Background()
	if err := store.Run(ctx, func(tx *repro.Txn) error {
		// The typed accessors return string directly — no type assertions.
		v, err := repro.ReadAs[string](ctx, tx, "greeting")
		if err != nil {
			return err
		}
		fmt.Println("initial value:", v)
		if err := repro.WriteAs(ctx, tx, "greeting", "hello, quorum"); err != nil {
			return err
		}
		// Work can nest arbitrarily; this subtransaction commits into its
		// parent.
		return tx.Sub(ctx, func(sub *repro.Txn) error {
			v, err := repro.ReadAs[string](ctx, sub, "greeting")
			if err != nil {
				return err
			}
			fmt.Println("subtransaction sees parent's write:", v)
			return nil
		})
	}); err != nil {
		log.Fatal(err)
	}

	if err := store.Run(ctx, func(tx *repro.Txn) error {
		v, err := repro.ReadAs[string](ctx, tx, "greeting")
		if err != nil {
			return err
		}
		fmt.Println("committed value:", v)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}
