// Voting: Gifford's weighted voting as configuration strategy — a strong
// site gets more votes than two weak ones, read/write thresholds derive
// the quorums, and the availability analysis quantifies the trade-offs
// before the configuration goes live on a cluster.
//
//	go run ./examples/voting
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/quorum"
)

func main() {
	// One well-provisioned site and four flaky edge replicas.
	votes := map[string]int{
		"core": 3,
		"e1":   1, "e2": 1, "e3": 1, "e4": 1,
	}
	dms := []string{"core", "e1", "e2", "e3", "e4"}
	// total = 7; rq=3, wq=5 favors reads through the core site.
	cfg, err := repro.Voting(votes, 3, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("weighted-voting configuration:", cfg)
	fmt.Printf("smallest read quorum: %d replicas; smallest write quorum: %d replicas\n",
		cfg.MinReadQuorumSize(), cfg.MinWriteQuorumSize())

	// Analyze before deploying: the core is reliable (99.9%), edges are
	// not (90%).
	up := map[string]float64{"core": 0.999, "e1": 0.9, "e2": 0.9, "e3": 0.9, "e4": 0.9}
	a := quorum.ExactAvailability(cfg, up)
	fmt.Printf("availability with a reliable core: read %.4f, write %.4f\n", a.Read, a.Write)
	maj := quorum.ExactAvailability(repro.Majority(dms), up)
	fmt.Printf("plain majority for comparison:     read %.4f, write %.4f\n", maj.Read, maj.Write)
	load := quorum.UniformLoad(cfg)
	fmt.Printf("per-replica load (uniform policy): read %.2f, write %.2f\n", load.Read, load.Write)

	// Deploy it.
	store, net, err := repro.OpenSim([]repro.ClusterItem{
		{Name: "profile", Initial: "empty", DMs: dms, Config: cfg},
	}, 100*time.Microsecond, time.Millisecond, 5)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		store.Close()
		net.Close()
	}()
	ctx := context.Background()
	if err := store.Run(ctx, func(tx *repro.Txn) error {
		return tx.Write(ctx, "profile", "v1")
	}); err != nil {
		log.Fatal(err)
	}
	// Edge failures leave the vote-heavy core able to anchor quorums.
	net.Crash("e3")
	net.Crash("e4")
	if err := store.Run(ctx, func(tx *repro.Txn) error {
		v, err := tx.Read(ctx, "profile")
		if err != nil {
			return err
		}
		fmt.Println("read with two edges down:", v)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}
