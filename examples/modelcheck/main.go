// Modelcheck: drive the paper's automaton model directly — build the
// replicated serial system B for a scenario, explore random executions
// with aborts, and verify Lemma 8 and the Theorem 10 simulation on each.
//
//	go run ./examples/modelcheck
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	dms := []string{"x1", "x2", "x3", "x4", "x5"}
	spec := repro.Spec{
		Items: []repro.ItemSpec{{
			Name:    "x",
			Initial: "initial",
			DMs:     dms,
			Config:  repro.Majority(dms),
		}},
		Top: []repro.TxnSpec{
			repro.Sub("alice",
				repro.WriteItem("w", "x", "from-alice"),
				repro.ReadItem("r", "x"),
			),
			repro.Sub("bob",
				repro.ReadItem("r1", "x"),
				repro.WriteItem("w", "x", "from-bob"),
				repro.ReadItem("r2", "x"),
			),
		},
		// Two accesses per DM let TMs retry replicas whose accesses the
		// scheduler aborted.
		ReadAccessesPerDM:  2,
		WriteAccessesPerDM: 2,
	}

	for seed := int64(0); seed < 5; seed++ {
		sched, err := repro.RunAndCheck(spec, seed, 0.2)
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		commits, aborts := 0, 0
		for _, op := range sched {
			switch op.Kind {
			case repro.OpCommit:
				commits++
			case repro.OpAbort:
				aborts++
			}
		}
		fmt.Printf("seed %d: %4d operations, %3d commits, %3d aborts — lemma 8 held, theorem 10 simulation OK\n",
			seed, len(sched), commits, aborts)
	}

	// Render the paper's figures from the same machinery.
	b, err := repro.BuildB(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSystem B transaction tree for this scenario (cf. paper Figure 1):")
	fmt.Println(repro.RenderTree(b.Tree))
}
