// Reconfigure: survive replica failures by changing quorum configurations
// online (paper Section 4), transparently to the transactions using the
// item.
//
//	go run ./examples/reconfigure
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	dms := []string{"east-1", "east-2", "west-1", "west-2", "west-3"}
	store, net, err := repro.OpenSim([]repro.ClusterItem{
		{Name: "inventory/widgets", Initial: 1000, DMs: dms, Config: repro.Majority(dms)},
	}, 200*time.Microsecond, 2*time.Millisecond, 11)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		store.Close()
		net.Close()
	}()
	ctx := context.Background()

	sell := func(n int) error {
		return store.Run(ctx, func(tx *repro.Txn) error {
			v, err := tx.ReadForUpdate(ctx, "inventory/widgets")
			if err != nil {
				return err
			}
			return tx.Write(ctx, "inventory/widgets", v.(int)-n)
		})
	}

	if err := sell(10); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sold 10 under majority over all five replicas")

	// The east region goes dark. Majorities of five still work (3 of the
	// west replicas), but every quorum probe of an east replica costs a
	// timeout. Reconfigure to the west replicas only.
	net.Crash("east-1")
	net.Crash("east-2")
	fmt.Println("east region down")
	west := dms[2:]
	if err := store.Reconfigure(ctx, "inventory/widgets", repro.Majority(west)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("reconfigured to majority over", west)
	if err := sell(5); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sold 5 under the west-only configuration")

	// East recovers; move to read-one/write-all over everything for cheap
	// reads. Version numbers ensure the stale east replicas are never
	// believed: reconfiguration copied the current value to a write-quorum
	// of the new configuration first.
	net.Restart("east-1")
	net.Restart("east-2")
	if err := store.Reconfigure(ctx, "inventory/widgets", repro.ReadOneWriteAll(dms)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("east back; reconfigured to read-one/write-all")
	if err := store.Run(ctx, func(tx *repro.Txn) error {
		v, err := tx.Read(ctx, "inventory/widgets")
		if err != nil {
			return err
		}
		fmt.Println("inventory now:", v, "(expected 985)")
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}
