// Banking: money transfers as nested transactions over replicated account
// balances, with a best-effort fee collection subtransaction whose abort
// the parent transfer tolerates — the paper's motivating use of transaction
// failures ("an operation to access a logical data item can complete even
// if some of its accesses abort").
//
//	go run ./examples/banking
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro"
)

var errInsufficient = errors.New("insufficient funds")

// transfer moves amount from one account to the other and tries to collect
// a fee into the bank's revenue account; failure to collect the fee must
// not lose the transfer.
func transfer(ctx context.Context, store *repro.Store, from, to string, amount int, feeOK *bool) error {
	return store.Run(ctx, func(tx *repro.Txn) error {
		fromBal, err := repro.ReadForUpdateAs[int](ctx, tx, from)
		if err != nil {
			return err
		}
		if fromBal < amount {
			return errInsufficient
		}
		toBal, err := repro.ReadForUpdateAs[int](ctx, tx, to)
		if err != nil {
			return err
		}
		if err := repro.WriteAs(ctx, tx, from, fromBal-amount); err != nil {
			return err
		}
		if err := repro.WriteAs(ctx, tx, to, toBal+amount); err != nil {
			return err
		}
		// Best-effort fee: run in a subtransaction so its failure aborts
		// only the fee, not the transfer.
		err = tx.Sub(ctx, func(sub *repro.Txn) error {
			rev, err := repro.ReadForUpdateAs[int](ctx, sub, "bank/revenue")
			if err != nil {
				return err
			}
			return repro.WriteAs(ctx, sub, "bank/revenue", rev+1)
		})
		*feeOK = err == nil
		return nil
	})
}

func main() {
	dms := []string{"d0", "d1", "d2", "d3", "d4"}
	items := []repro.ClusterItem{
		{Name: "acct/alice", Initial: 100, DMs: dms[:3], Config: repro.Majority(dms[:3])},
	}
	// Put bob and the revenue account on their own replica groups with
	// their own quorum strategies: per-item configurations are the point
	// of the generalized algorithm.
	bobDMs := []string{"b0", "b1", "b2"}
	items = append(items, repro.ClusterItem{Name: "acct/bob", Initial: 50, DMs: bobDMs, Config: repro.ReadOneWriteAll(bobDMs)})
	revDMs := []string{"r0", "r1", "r2", "r3", "r4"}
	items = append(items, repro.ClusterItem{Name: "bank/revenue", Initial: 0, DMs: revDMs, Config: repro.Majority(revDMs)})

	store, net, err := repro.OpenSim(items, 100*time.Microsecond, time.Millisecond, 7)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		store.Close()
		net.Close()
	}()
	ctx := context.Background()

	var feeOK bool
	if err := transfer(ctx, store, "acct/alice", "acct/bob", 30, &feeOK); err != nil {
		log.Fatal(err)
	}
	fmt.Println("transfer of 30 committed; fee collected:", feeOK)

	// Crash every revenue replica: fee collection becomes impossible, but
	// transfers keep committing because the fee runs in a subtransaction.
	for _, dm := range revDMs {
		net.Crash(dm)
	}
	if err := transfer(ctx, store, "acct/bob", "acct/alice", 10, &feeOK); err != nil {
		log.Fatal(err)
	}
	fmt.Println("transfer with revenue replicas down committed; fee collected:", feeOK)

	if err := store.Run(ctx, func(tx *repro.Txn) error {
		a, err := repro.ReadAs[int](ctx, tx, "acct/alice")
		if err != nil {
			return err
		}
		b, err := repro.ReadAs[int](ctx, tx, "acct/bob")
		if err != nil {
			return err
		}
		fmt.Printf("final balances: alice=%v bob=%v (conserved: %v)\n", a, b, a+b == 150)
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// An insufficient-funds transfer aborts atomically.
	err = transfer(ctx, store, "acct/bob", "acct/alice", 10_000, &feeOK)
	fmt.Println("oversized transfer rejected:", errors.Is(err, errInsufficient))
}
