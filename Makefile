GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The cluster and sim packages are the concurrency-heavy ones; run them
# under the race detector.
race:
	$(GO) test -race ./internal/cluster/... ./internal/sim/...

bench:
	$(GO) test -bench=. -benchmem .

# CI entry point: everything tier-1 checks plus vet and the race pass.
verify: build vet test race
