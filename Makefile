GO ?= go

.PHONY: build test vet race bench chaos fuzz verify

build:
	$(GO) build ./...

# -shuffle=on randomizes test order within each package, surfacing
# inter-test state leaks a fixed order would mask.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Seeded chaos campaigns with full-history serializability checking. A
# failing campaign prints its seed and the exact replay command.
chaos:
	$(GO) run ./cmd/qchaos -seed 1 -campaigns 10

# Short coverage-guided fuzz pass over the quorum construction invariants.
fuzz:
	$(GO) test ./internal/quorum/ -fuzz FuzzConfig -fuzztime 30s

# CI entry point: everything tier-1 checks plus vet and the race pass.
verify: build vet test race
