GO ?= go

.PHONY: build test vet staticcheck race bench bench-json chaos fuzz proc-smoke verify

build:
	$(GO) build ./...

# -shuffle=on randomizes test order within each package, surfacing
# inter-test state leaks a fixed order would mask.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable benchmark snapshot: runs the full suite and writes the
# first unused BENCH_<n>.json (name, ns/op, allocs/op, custom metrics).
bench-json:
	$(GO) test -bench=. -benchmem . | $(GO) run ./cmd/benchjson

# Seeded chaos campaigns with full-history serializability checking. A
# failing campaign prints its seed and the exact replay command.
chaos:
	$(GO) run ./cmd/qchaos -seed 1 -campaigns 10

# Coverage-guided fuzz passes: quorum construction invariants, WAL record
# framing, multi-record WAL segments recovered through the fault-injecting
# filesystem (recovery must replay, truncate a torn tail, or fail with a
# typed corruption error — never panic, never serve damage), and the TCP
# transport's wire envelope (malformed frames must fail with a typed decode
# error, never a panic).
fuzz:
	$(GO) test ./internal/quorum/ -fuzz FuzzConfig -fuzztime 30s
	$(GO) test ./internal/wal/ -fuzz FuzzRecord -fuzztime 30s
	$(GO) test ./internal/wal/ -fuzz FuzzSegment -fuzztime 30s
	$(GO) test ./internal/transport/tcp/ -fuzz FuzzEnvelope -fuzztime 30s

# Multi-process smoke: a real 3-replica qcstore cluster as separate OS
# processes over TCP — nested transaction committed through quorums, one
# replica SIGKILLed and restarted, recovery verified from its write-ahead
# log alone, every process exiting 0 on SIGINT.
proc-smoke:
	$(GO) build -o bin/qcstore ./cmd/qcstore
	$(GO) run ./cmd/qchaos -proc -bin bin/qcstore

# CI entry point: everything tier-1 checks plus vet, staticcheck (when
# installed — the toolchain image may not carry it), an explicit race pass
# over the chaos campaigns (they stress every cross-goroutine path the
# self-healing machinery added), the race pass, short fuzz smokes (quorum
# invariants, WAL records, TCP wire envelope), the qcstore durable-mode
# end-to-end demo (open, write, close, reopen from the WALs, read back),
# the multi-process kill -9 recovery smoke (real qcstore server processes
# over TCP), the overload smoke (the three-arm goodput gate — protections
# under 2x load must stay within 20% of capacity while the ablated
# cluster collapses), the stalehint gate: seeded campaigns that
# partition exactly the replica the next hinted read trusts while newer
# versions commit through the survivors, every history checked
# serializable, the migrate gate: campaigns that kill the migration
# coordinator mid-cutover (abandoned migrations must resolve with zero
# wedged items, zero violations), the shard scale-out gate (E16
# smoke — 4 shards must deliver >= 2.5x 1-shard throughput under the
# same zipfian load without regressing read p99), and the coordcrash gate
# under both commit protocols: coordinators killed at every seeded instant
# around the commit point — the 2PC arm must converge within the
# lease-TTL reap window, the Paxos arm must resolve every acceptor-held
# outcome through acceptor recovery (zero in-doubt past one inquiry round
# trip), both with exactly one outcome per crash and zero violations, and
# the diskfault gate under both protocols plus the amnesia and coordcrash
# mixes: replicas' logs scrambled at rest, disks filled mid-round, and
# coordinators killed with a cohort disk scrambled — every quarantine must
# end in a peer rebuild, zero violations, zero permanently quarantined
# replicas, zero wedged items (the proc smoke covers the same path against
# real processes: a bit flipped on a real disk, the restarted process
# rebuilding from its peers over TCP).
verify: build vet staticcheck test race
	$(GO) test -race ./internal/chaos/...
	$(GO) test ./internal/quorum/ -fuzz FuzzConfig -fuzztime 5s
	$(GO) test ./internal/wal/ -fuzz FuzzRecord -fuzztime 5s
	$(GO) test ./internal/wal/ -fuzz FuzzSegment -fuzztime 5s
	$(GO) test ./internal/transport/tcp/ -fuzz FuzzEnvelope -fuzztime 5s
	d=$$(mktemp -d) && $(GO) run ./cmd/qcstore -dir $$d >/dev/null && rm -rf $$d
	$(GO) build -o bin/qcstore ./cmd/qcstore
	$(GO) run ./cmd/qchaos -proc -bin bin/qcstore
	$(GO) run ./cmd/qchaos -overload
	$(GO) run ./cmd/qchaos -seed 1 -campaigns 5 -faults stalehint
	$(GO) run ./cmd/qchaos -seed 1 -campaigns 5 -faults migrate
	$(GO) run ./cmd/qchaos -seed 1 -campaigns 3 -faults stalehint,migrate
	$(GO) run ./cmd/qchaos -seed 1 -campaigns 5 -faults coordcrash -protocol 2pc
	$(GO) run ./cmd/qchaos -seed 1 -campaigns 5 -faults coordcrash -protocol paxos
	$(GO) run ./cmd/qchaos -seed 1 -campaigns 5 -faults diskfault -protocol 2pc
	$(GO) run ./cmd/qchaos -seed 1 -campaigns 5 -faults diskfault -protocol paxos
	$(GO) run ./cmd/qchaos -seed 1 -campaigns 3 -faults diskfault,amnesia
	$(GO) run ./cmd/qchaos -seed 1 -campaigns 3 -faults diskfault,coordcrash -protocol paxos
	$(GO) run ./cmd/qchaos -seed 2 -campaigns 3 -protocol paxos
	$(GO) run ./cmd/qchaos -shardscale
	@echo verify: OK

# Static analysis beyond vet; skipped with a notice when the binary is not
# on PATH, so verify works on minimal toolchain images.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping"; \
	fi
